//! One runner per paper figure/table.
//!
//! Each function builds the experiment the paper describes, runs it, and
//! returns structured results; the [`crate::registry`] cell runners call
//! them and the renderers print them. All runners accept an epoch budget
//! (so `--quick` mode and the micro-benchmark wrappers can shrink them),
//! a base RNG `seed` their workload generators derive per-core seeds
//! from (`0` reproduces the paper runs), and a [`RunCtx`] that attaches
//! trace sinks and collects tagged end-of-run reports for the sweep
//! harness.

use crate::harness::RunCtx;
use pabst_core::governor::GovernorKind;
use pabst_cpu::Workload;
use pabst_dram::ArbiterMode;
use pabst_simkit::fault::FaultPlan;
use pabst_simkit::stats::allocation_error_pct;
use pabst_soc::config::{RegulationMode, SystemConfig, WbAccounting};
use pabst_soc::system::{System, SystemBuilder};
use pabst_workloads::{
    ChaserGen, MemcachedGen, PeriodicStreamGen, Region, SpecProxyGen, SpecWorkload, StreamGen,
    ALL_SPEC,
};

/// Warmup epochs before measurement in a standard run (the governor
/// converges within ~10 epochs; see the `governor_trace` example).
pub const WARMUP_EPOCHS: usize = 8;
/// Measured epochs in a standard run.
pub const MEASURE_EPOCHS: usize = 15;

/// A disjoint address region for (class, core).
pub fn region_for(class: usize, core: usize, lines: u64) -> Region {
    Region::new(((class as u64) << 40) + ((core as u64) << 32), lines)
}

/// `n` read streamers for a class, seeded `seed + class*64 + i`.
pub fn read_streamers(class: usize, n: usize, seed: u64) -> Vec<Box<dyn Workload>> {
    (0..n)
        .map(|i| {
            Box::new(StreamGen::reads(
                region_for(class, i, 1 << 20),
                seed + (class * 64 + i) as u64,
            )) as Box<dyn Workload>
        })
        .collect()
}

/// `n` write streamers for a class, seeded `seed + class*64 + i`.
pub fn write_streamers(class: usize, n: usize, seed: u64) -> Vec<Box<dyn Workload>> {
    (0..n)
        .map(|i| {
            Box::new(StreamGen::writes(
                region_for(class, i, 1 << 20),
                seed + (class * 64 + i) as u64,
            )) as Box<dyn Workload>
        })
        .collect()
}

/// `n` chasers (4 chains each) for a class, seeded `seed + class*64 + i`.
pub fn chasers(class: usize, n: usize, seed: u64) -> Vec<Box<dyn Workload>> {
    (0..n)
        .map(|i| {
            Box::new(ChaserGen::new(
                region_for(class, i, 1 << 18),
                4,
                seed + (class * 64 + i) as u64,
            )) as Box<dyn Workload>
        })
        .collect()
}

/// `n` instances of a SPEC proxy for a class, seeded `seed + i`.
pub fn spec_cores(
    which: SpecWorkload,
    class: usize,
    n: usize,
    seed: u64,
) -> Vec<Box<dyn Workload>> {
    (0..n)
        .map(|i| {
            Box::new(SpecProxyGen::new(which, region_for(class, i, 1 << 20), seed + i as u64))
                as Box<dyn Workload>
        })
        .collect()
}

fn two_class(
    mode: RegulationMode,
    w0: u32,
    w1: u32,
    c0: Vec<Box<dyn Workload>>,
    c1: Vec<Box<dyn Workload>>,
    ctx: &mut RunCtx,
) -> System {
    let mut sys = SystemBuilder::new(SystemConfig::baseline_32core(), mode)
        .class(w0, c0)
        .class(w1, c1)
        .build()
        .expect("valid two-class configuration");
    ctx.attach(&mut sys);
    sys
}

// ---------------------------------------------------------------------
// Figs. 1 and 7: source vs target vs PABST on two workload mixes.
// ---------------------------------------------------------------------

/// The two workload mixes of Fig. 1 / Fig. 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig1Mix {
    /// Two write-stream classes, 3:1 (left bars of Fig. 7; Fig. 1a/b uses
    /// the same shape with streams).
    StreamStream,
    /// Chaser (3) + read stream (1) (right bars).
    ChaserStream,
}

/// One bar of Fig. 1/7: observed per-class bandwidth and allocation error.
#[derive(Debug, Clone)]
pub struct AllocResult {
    /// Per-class mean bytes/cycle over the measured window.
    pub bytes_per_cycle: Vec<f64>,
    /// Max relative share error vs the 3:1 target, percent.
    pub error_pct: f64,
}

/// Runs one (mix, mode) cell of Fig. 1 / Fig. 7 on the baseline machine.
pub fn fig1_cell(
    mix: Fig1Mix,
    mode: RegulationMode,
    epochs: usize,
    seed: u64,
    ctx: &mut RunCtx,
) -> AllocResult {
    fig1_cell_with(SystemConfig::baseline_32core(), mix, mode, epochs, seed, ctx)
}

/// [`fig1_cell`] with an explicit machine configuration (used by the
/// calibration sweep).
pub fn fig1_cell_with(
    cfg: SystemConfig,
    mix: Fig1Mix,
    mode: RegulationMode,
    epochs: usize,
    seed: u64,
    ctx: &mut RunCtx,
) -> AllocResult {
    let (c0, c1) = match mix {
        Fig1Mix::StreamStream => (write_streamers(0, 16, seed), write_streamers(1, 16, seed)),
        Fig1Mix::ChaserStream => (chasers(0, 16, seed), read_streamers(1, 16, seed)),
    };
    let mut sys = SystemBuilder::new(cfg, mode)
        .class(3, c0)
        .class(1, c1)
        .build()
        .expect("valid two-class configuration");
    ctx.attach(&mut sys);
    let warm = epochs / 2;
    sys.run_epochs(warm + epochs);
    ctx.report(&sys);
    let m = sys.metrics();
    let o0 = m.bw_series.mean_over(0, warm);
    let o1 = m.bw_series.mean_over(1, warm);
    AllocResult {
        bytes_per_cycle: vec![
            o0 / m.bw_series.epoch_cycles() as f64,
            o1 / m.bw_series.epoch_cycles() as f64,
        ],
        error_pct: allocation_error_pct(&[3.0, 1.0], &[o0.max(1.0), o1.max(1.0)]),
    }
}

// ---------------------------------------------------------------------
// Fig. 5: proportional allocation time series (7:3 read streams).
// ---------------------------------------------------------------------

/// Per-epoch bandwidth shares of each class.
#[derive(Debug, Clone)]
pub struct SeriesResult {
    /// `points[e][c]` = bytes/cycle of class `c` in epoch `e`.
    pub points: Vec<Vec<f64>>,
    /// Epoch length in cycles.
    pub epoch_cycles: u64,
}

/// Runs Fig. 5: two 16-core read-stream classes at 7:3.
pub fn fig5_series(epochs: usize, seed: u64, ctx: &mut RunCtx) -> SeriesResult {
    let mut sys = two_class(
        RegulationMode::Pabst,
        7,
        3,
        read_streamers(0, 16, seed),
        read_streamers(1, 16, seed),
        ctx,
    );
    sys.run_epochs(epochs);
    ctx.report(&sys);
    collect_series(&sys)
}

fn collect_series(sys: &System) -> SeriesResult {
    let m = sys.metrics();
    let ec = m.bw_series.epoch_cycles();
    let points = (0..m.bw_series.epochs())
        .map(|e| m.bw_series.epoch(e).iter().map(|b| b / ec as f64).collect())
        .collect();
    SeriesResult { points, epoch_cycles: ec }
}

// ---------------------------------------------------------------------
// Fig. 6: work conservation (periodic 70% streamer + constant 30%).
// ---------------------------------------------------------------------

/// Runs Fig. 6 and returns the bandwidth series (class 0 = periodic,
/// class 1 = constant).
pub fn fig6_series(epochs: usize, seed: u64, ctx: &mut RunCtx) -> SeriesResult {
    let periodic: Vec<Box<dyn Workload>> = (0..16)
        .map(|i| {
            Box::new(PeriodicStreamGen::new(
                region_for(0, i, 1 << 20),
                256,
                8_000,
                900_000,
                seed + i as u64,
            )) as Box<dyn Workload>
        })
        .collect();
    let mut sys =
        two_class(RegulationMode::Pabst, 7, 3, periodic, read_streamers(1, 16, seed), ctx);
    sys.run_epochs(epochs);
    ctx.report(&sys);
    collect_series(&sys)
}

// ---------------------------------------------------------------------
// Fig. 8: proportional distribution of excess bandwidth.
// ---------------------------------------------------------------------

/// Fig. 8 result: mean shares of (L3-resident, high DDR, low DDR).
#[derive(Debug, Clone)]
pub struct Fig8Result {
    /// Mean share of total bandwidth per class over the measured window.
    pub shares: [f64; 3],
    /// The full series for plotting.
    pub series: SeriesResult,
}

/// Runs Fig. 8: a 25%-share L3-resident streamer plus 50%- and 25%-share
/// DDR streamers; the resident class's excess must split 2:1.
pub fn fig8_run(epochs: usize, seed: u64, ctx: &mut RunCtx) -> Fig8Result {
    let resident: Vec<Box<dyn Workload>> = (0..8)
        .map(|i| {
            Box::new(StreamGen::reads(region_for(0, i, 4096), seed + i as u64)) as Box<dyn Workload>
        })
        .collect();
    let hi: Vec<Box<dyn Workload>> = (0..12)
        .map(|i| {
            Box::new(StreamGen::reads(region_for(1, i, 1 << 20), seed + 100 + i as u64))
                as Box<dyn Workload>
        })
        .collect();
    let lo: Vec<Box<dyn Workload>> = (0..12)
        .map(|i| {
            Box::new(StreamGen::reads(region_for(2, i, 1 << 20), seed + 200 + i as u64))
                as Box<dyn Workload>
        })
        .collect();
    let mut sys = SystemBuilder::new(SystemConfig::baseline_32core(), RegulationMode::Pabst)
        .class(1, resident)
        .l3_ways(0, 4)
        .class(2, hi)
        .l3_ways(4, 6)
        .class(1, lo)
        .l3_ways(10, 6)
        .build()
        .expect("fig8 configuration");
    ctx.attach(&mut sys);
    sys.run_epochs(epochs);
    ctx.report(&sys);
    let from = epochs / 2;
    let m = sys.metrics();
    Fig8Result {
        shares: [m.mean_share(0, from), m.mean_share(1, from), m.mean_share(2, from)],
        series: collect_series(&sys),
    }
}

// ---------------------------------------------------------------------
// Fig. 9: memcached service times (scaled 8-core machine, 20:1).
// ---------------------------------------------------------------------

/// Service-time distribution summary (cycles).
#[derive(Debug, Clone, Copy)]
pub struct ServiceResult {
    /// Mean service time.
    pub mean: f64,
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Transactions measured.
    pub count: usize,
}

/// Runs one Fig. 9 configuration. `aggressor` co-locates 7 streaming
/// cores; `mode` selects the QoS configuration.
pub fn fig9_run(
    mode: RegulationMode,
    aggressor: bool,
    epochs: usize,
    seed: u64,
    ctx: &mut RunCtx,
) -> ServiceResult {
    let server: Vec<Box<dyn Workload>> =
        vec![Box::new(MemcachedGen::new(region_for(0, 0, 1 << 18), seed + 7))];
    let mut b =
        SystemBuilder::new(SystemConfig::scaled_8core(), mode).class(20, server).l3_ways(0, 8);
    if aggressor {
        let streamers: Vec<Box<dyn Workload>> = (0..7)
            .map(|i| {
                Box::new(StreamGen::reads(region_for(1, i, 1 << 20), seed + 50 + i as u64))
                    as Box<dyn Workload>
            })
            .collect();
        b = b.class(1, streamers).l3_ways(8, 8);
    }
    let mut sys = b.build().expect("fig9 configuration");
    ctx.attach(&mut sys);
    sys.run_epochs(WARMUP_EPOCHS);
    sys.mark_measurement();
    sys.run_epochs(epochs.max(20));
    ctx.report(&sys);
    let h = &mut sys.metrics_mut().service[0];
    ServiceResult {
        mean: h.mean().unwrap_or(0.0),
        p50: h.percentile(50.0).unwrap_or(0),
        p95: h.percentile(95.0).unwrap_or(0),
        p99: h.percentile(99.0).unwrap_or(0),
        count: h.count(),
    }
}

// ---------------------------------------------------------------------
// Figs. 10 and 12: SPEC + streaming aggressor at 32:1.
// ---------------------------------------------------------------------

/// One row of Figs. 10/12 for a SPEC workload under one mode.
#[derive(Debug, Clone, Copy)]
pub struct SpecCell {
    /// Weighted slowdown vs the isolated run (Fig. 10).
    pub slowdown: f64,
    /// Data-bus utilization over the measured window (Fig. 12).
    pub efficiency: f64,
    /// SPEC class bandwidth, bytes/cycle.
    pub spec_bpc: f64,
}

/// Mean IPC of the isolated 16-core SPEC run (same 8-way cache slice).
pub fn spec_isolated_ipc(which: SpecWorkload, epochs: usize, seed: u64, ctx: &mut RunCtx) -> f64 {
    let mut sys = SystemBuilder::new(SystemConfig::baseline_32core(), RegulationMode::None)
        .class(32, spec_cores(which, 0, 16, seed))
        .l3_ways(0, 8)
        .build()
        .expect("isolated configuration");
    ctx.attach(&mut sys);
    sys.run_epochs(WARMUP_EPOCHS);
    sys.mark_measurement();
    sys.run_epochs(epochs);
    ctx.report_labeled(&sys, "isolated");
    (0..16).map(|i| sys.ipc_since_mark(i)).sum::<f64>() / 16.0
}

/// Runs one (workload, mode) cell: SPEC (weight 32) on 16 cores + 16
/// streaming cores (weight 1). `iso_ipc` is the matching isolated IPC.
pub fn fig10_cell(
    which: SpecWorkload,
    mode: RegulationMode,
    iso_ipc: f64,
    epochs: usize,
    seed: u64,
    ctx: &mut RunCtx,
) -> SpecCell {
    let mut sys = SystemBuilder::new(SystemConfig::baseline_32core(), mode)
        .class(32, spec_cores(which, 0, 16, seed))
        .l3_ways(0, 8)
        .class(1, read_streamers(1, 16, seed))
        .l3_ways(8, 8)
        .build()
        .expect("fig10 configuration");
    ctx.attach(&mut sys);
    sys.run_epochs(WARMUP_EPOCHS);
    sys.mark_measurement();
    sys.run_epochs(epochs);
    ctx.report_labeled(&sys, mode.label());
    let ipc = (0..16).map(|i| sys.ipc_since_mark(i)).sum::<f64>() / 16.0;
    let window = (epochs as u64) * 20_000;
    SpecCell {
        slowdown: iso_ipc / ipc,
        efficiency: sys.bus_utilization_since_mark(),
        spec_bpc: sys.bytes_since_mark(0) as f64 / window as f64,
    }
}

// ---------------------------------------------------------------------
// Fig. 11: work-conserving fairness in an IaaS consolidation.
// ---------------------------------------------------------------------

/// Fig. 11 result for one workload: PABST 4-way consolidated IPC vs the
/// static-allocation baseline (isolated 8 cores, DDR down-clocked 4x).
#[derive(Debug, Clone, Copy)]
pub struct Fig11Cell {
    /// Mean per-core IPC under PABST with four equal 25% classes.
    pub pabst_ipc: f64,
    /// Mean per-core IPC of the static quarter-bandwidth baseline.
    pub static_ipc: f64,
}

impl Fig11Cell {
    /// Percent improvement of PABST over the static allocation.
    pub fn improvement_pct(&self) -> f64 {
        (self.pabst_ipc / self.static_ipc - 1.0) * 100.0
    }
}

/// Runs one Fig. 11 workload: four 8-core classes of the same SPEC proxy
/// at equal 25% shares, against an 8-core isolated run with DDR scaled
/// down 4x.
pub fn fig11_cell(which: SpecWorkload, epochs: usize, seed: u64, ctx: &mut RunCtx) -> Fig11Cell {
    let mut b = SystemBuilder::new(SystemConfig::baseline_32core(), RegulationMode::Pabst);
    for c in 0..4 {
        b = b.class(1, spec_cores(which, c, 8, seed)).l3_ways(c * 4, 4);
    }
    let mut sys = b.build().expect("fig11 configuration");
    ctx.attach(&mut sys);
    sys.run_epochs(WARMUP_EPOCHS);
    sys.mark_measurement();
    sys.run_epochs(epochs);
    ctx.report_labeled(&sys, "consolidated");
    let pabst_ipc = (0..32).map(|i| sys.ipc_since_mark(i)).sum::<f64>() / 32.0;

    // Static baseline: 8 cores alone, DDR frequency / 4, same 4-way cache
    // slice the class gets above.
    let mut cfg = SystemConfig::baseline_32core();
    cfg.cores = 8;
    cfg.mcs = 4;
    cfg.dram = cfg.dram.down_clocked(4);
    let mut base = SystemBuilder::new(cfg, RegulationMode::None)
        .class(1, spec_cores(which, 0, 8, seed))
        .l3_ways(0, 4)
        .build()
        .expect("fig11 baseline");
    ctx.attach(&mut base);
    base.run_epochs(WARMUP_EPOCHS);
    base.mark_measurement();
    base.run_epochs(epochs);
    ctx.report_labeled(&base, "static baseline");
    let static_ipc = (0..8).map(|i| base.ipc_since_mark(i)).sum::<f64>() / 8.0;

    Fig11Cell { pabst_ipc, static_ipc }
}

// ---------------------------------------------------------------------
// Ablations (DESIGN.md §6).
// ---------------------------------------------------------------------

/// Runs the Fig. 5 workload with an explicit writeback accounting policy,
/// returning (share0, share1).
pub fn ablate_writeback(
    policy: WbAccounting,
    epochs: usize,
    seed: u64,
    ctx: &mut RunCtx,
) -> (f64, f64) {
    let mut cfg = SystemConfig::baseline_32core();
    cfg.wb_accounting = policy;
    let mut sys = SystemBuilder::new(cfg, RegulationMode::Pabst)
        .class(7, write_streamers(0, 16, seed))
        .class(3, write_streamers(1, 16, seed))
        .build()
        .expect("ablation configuration");
    ctx.attach(&mut sys);
    sys.run_epochs(epochs);
    ctx.report(&sys);
    let from = epochs / 2;
    (sys.metrics().mean_share(0, from), sys.metrics().mean_share(1, from))
}

/// Runs Fig. 5 with an overridden pacer burst window, returning the
/// allocation error (share accuracy vs 7:3).
pub fn ablate_burst(burst: u64, epochs: usize, seed: u64, ctx: &mut RunCtx) -> f64 {
    let mut cfg = SystemConfig::baseline_32core();
    cfg.pacer_burst = burst;
    let mut sys = SystemBuilder::new(cfg, RegulationMode::Pabst)
        .class(7, read_streamers(0, 16, seed))
        .class(3, read_streamers(1, 16, seed))
        .build()
        .expect("ablation configuration");
    ctx.attach(&mut sys);
    sys.run_epochs(epochs);
    ctx.report(&sys);
    let from = epochs / 2;
    let m = sys.metrics();
    allocation_error_pct(
        &[7.0, 3.0],
        &[m.bw_series.mean_over(0, from).max(1.0), m.bw_series.mean_over(1, from).max(1.0)],
    )
}

/// Runs the chaser+stream mix with an overridden arbiter slack, returning
/// the allocation error vs 3:1.
pub fn ablate_slack(slack: u64, epochs: usize, seed: u64, ctx: &mut RunCtx) -> f64 {
    let mut cfg = SystemConfig::baseline_32core();
    cfg.arbiter_slack = slack;
    let mut sys = SystemBuilder::new(cfg, RegulationMode::Pabst)
        .class(3, chasers(0, 16, seed))
        .class(1, read_streamers(1, 16, seed))
        .build()
        .expect("ablation configuration");
    ctx.attach(&mut sys);
    sys.run_epochs(epochs);
    ctx.report(&sys);
    let from = epochs / 2;
    let m = sys.metrics();
    allocation_error_pct(
        &[3.0, 1.0],
        &[m.bw_series.mean_over(0, from).max(1.0), m.bw_series.mean_over(1, from).max(1.0)],
    )
}

/// Runs Fig. 5 with an overridden governor inertia, returning
/// (allocation error pct, mean |ΔM|/M over the tail) — the stability
/// ablation of DESIGN.md §6.
pub fn ablate_inertia(inertia: u32, epochs: usize, seed: u64, ctx: &mut RunCtx) -> (f64, f64) {
    let mut cfg = SystemConfig::baseline_32core();
    cfg.monitor.inertia = inertia;
    let mut sys = SystemBuilder::new(cfg, RegulationMode::Pabst)
        .class(7, read_streamers(0, 16, seed))
        .class(3, read_streamers(1, 16, seed))
        .build()
        .expect("ablation configuration");
    ctx.attach(&mut sys);
    sys.run_epochs(epochs);
    ctx.report(&sys);
    let from = epochs / 2;
    let m = sys.metrics();
    let err = allocation_error_pct(
        &[7.0, 3.0],
        &[m.bw_series.mean_over(0, from).max(1.0), m.bw_series.mean_over(1, from).max(1.0)],
    );
    let tail = &m.m_series[from..];
    let mut jitter = 0.0;
    for w in tail.windows(2) {
        jitter += (f64::from(w[1]) - f64::from(w[0])).abs() / f64::from(w[0].max(1));
    }
    (err, jitter / (tail.len().max(2) - 1) as f64)
}

/// Runs the skewed-traffic scenario of §III-C1: one class hammers a
/// single memory controller while another streams across all four.
/// Returns total delivered bytes/cycle under the chosen regulation
/// granularity. With the global wired-OR SAT, the hot controller keeps
/// the signal high and the governor throttles traffic destined for the
/// three idle controllers too; the per-MC variant recovers them.
pub fn skewed_traffic_utilization(per_mc: bool, epochs: usize, seed: u64, ctx: &mut RunCtx) -> f64 {
    use pabst_workloads::SkewedStreamGen;
    let mut cfg = SystemConfig::baseline_32core();
    cfg.per_mc_regulation = per_mc;
    let skewed: Vec<Box<dyn Workload>> = (0..16)
        .map(|i| {
            Box::new(SkewedStreamGen::new(region_for(0, i, 1 << 20), 0, cfg.mcs, seed + i as u64))
                as Box<dyn Workload>
        })
        .collect();
    let mut sys = SystemBuilder::new(cfg, RegulationMode::Pabst)
        .class(1, skewed)
        .class(1, read_streamers(1, 16, seed))
        .build()
        .expect("skewed configuration");
    ctx.attach(&mut sys);
    sys.run_epochs(epochs);
    ctx.report(&sys);
    sys.metrics().total_bytes_per_cycle(epochs / 2)
}

// ---------------------------------------------------------------------
// Scale: the governor loop as the machine grows (topology experiment).
// ---------------------------------------------------------------------

/// One point of the scale study: how well the single wired-OR SAT
/// feedback loop holds a 3:1 allocation as tiles and controllers grow.
#[derive(Debug, Clone)]
pub struct ScaleResult {
    /// Max relative share error vs the 3:1 target, percent.
    pub error_pct: f64,
    /// Aggregate delivered bandwidth, bytes/cycle.
    pub total_bpc: f64,
    /// Fraction of measured epochs the SAT broadcast was high.
    pub sat_duty: f64,
    /// Mean |ΔM|/M over the measured tail — the governor's oscillation
    /// amplitude. This is where the 256-tile wobble shows: one global M
    /// paces 256 tiles toward 16 controllers, so each step moves 8× the
    /// traffic of the baseline and the loop hunts around its fixed point.
    pub jitter: f64,
}

/// Runs one scale cell on `cfg`: half the tiles stream reads at weight 3,
/// the other half at weight 1 (the Fig. 5 contest, scaled to the shape).
pub fn scale_cell(cfg: SystemConfig, epochs: usize, seed: u64, ctx: &mut RunCtx) -> ScaleResult {
    let half = cfg.cores / 2;
    let mut sys = SystemBuilder::new(cfg, RegulationMode::Pabst)
        .class(3, read_streamers(0, half, seed))
        .class(1, read_streamers(1, half, seed))
        .build()
        .expect("valid scale configuration");
    ctx.attach(&mut sys);
    let warm = epochs / 2;
    sys.run_epochs(warm + epochs);
    ctx.report(&sys);
    let m = sys.metrics();
    let o0 = m.bw_series.mean_over(0, warm);
    let o1 = m.bw_series.mean_over(1, warm);
    let sat_tail = &m.sat_series[warm..];
    let m_tail = &m.m_series[warm..];
    let mut jitter = 0.0;
    for w in m_tail.windows(2) {
        jitter += (f64::from(w[1]) - f64::from(w[0])).abs() / f64::from(w[0].max(1));
    }
    ScaleResult {
        error_pct: allocation_error_pct(&[3.0, 1.0], &[o0.max(1.0), o1.max(1.0)]),
        total_bpc: (o0 + o1) / m.bw_series.epoch_cycles() as f64,
        sat_duty: sat_tail.iter().filter(|&&s| s).count() as f64 / sat_tail.len().max(1) as f64,
        jitter: jitter / (m_tail.len().max(2) - 1) as f64,
    }
}

// ---------------------------------------------------------------------
// Resilience: fault-rate degradation curve (docs/RESILIENCE.md).
// ---------------------------------------------------------------------

/// One point of the resilience degradation curve.
#[derive(Debug, Clone)]
pub struct ResilienceResult {
    /// Max relative share error vs the 3:1 target, percent.
    pub error_pct: f64,
    /// Aggregate delivered bandwidth over the measured window,
    /// bytes/cycle.
    pub total_bpc: f64,
    /// Fault events the plan injected over the whole run.
    pub faults: u64,
    /// Epochs the governor spent in the degraded (stale-SAT) policy.
    pub degraded_epochs: u64,
}

/// Runs one resilience cell: a 3:1 read-stream contest on the scaled
/// 8-core machine with `plan` injected and the forward-progress watchdog
/// armed — a fault mix that truly wedges the machine becomes a panic the
/// sweep harness records as a cell failure, not a hung run.
pub fn resilience_cell(
    plan: FaultPlan,
    epochs: usize,
    seed: u64,
    ctx: &mut RunCtx,
) -> ResilienceResult {
    let mut cfg = SystemConfig::scaled_8core();
    cfg.watchdog_epochs = 50;
    let mut sys = SystemBuilder::new(cfg, RegulationMode::Pabst)
        .class(3, read_streamers(0, 4, seed))
        .class(1, read_streamers(1, 4, seed))
        .fault_plan(plan)
        .build()
        .expect("valid resilience configuration");
    ctx.attach(&mut sys);
    let warm = epochs / 2;
    sys.run_epochs(warm + epochs);
    ctx.report(&sys);
    let m = sys.metrics();
    let o0 = m.bw_series.mean_over(0, warm);
    let o1 = m.bw_series.mean_over(1, warm);
    let ec = m.bw_series.epoch_cycles() as f64;
    ResilienceResult {
        error_pct: allocation_error_pct(&[3.0, 1.0], &[o0.max(1.0), o1.max(1.0)]),
        total_bpc: (o0 + o1) / ec,
        faults: sys.faults_injected(),
        degraded_epochs: sys.degraded_epochs(),
    }
}

// ---------------------------------------------------------------------
// Mechanisms: the governor × arbiter zoo (docs/MECHANISMS.md).
// ---------------------------------------------------------------------

/// One point of the mechanism-zoo sweep: how a (governor, arbiter) pair
/// behaves on one workload mix.
#[derive(Debug, Clone, Copy)]
pub struct MechanismResult {
    /// Max relative share error vs the 3:1 target, percent.
    pub error_pct: f64,
    /// Aggregate delivered bandwidth over the measured tail, bytes/cycle.
    pub total_bpc: f64,
    /// 95th-percentile memcached service time, cycles.
    pub p95: u64,
    /// 99th-percentile memcached service time, cycles.
    pub p99: u64,
}

/// Runs one mechanism-zoo cell on the scaled 8-core machine: class 0
/// (weight 3) is a memcached server plus three aggressors, class 1
/// (weight 1) is four read streamers. `chaser_mix` swaps the class-0
/// aggressors from read streamers to pointer chasers, exercising the
/// mechanisms on both bandwidth-bound and latency-bound traffic. The
/// governor and arbiter mechanisms are selected through [`SystemConfig`],
/// exactly as a provenance-tracked production run would.
pub fn mechanisms_cell(
    governor: GovernorKind,
    arbiter: ArbiterMode,
    chaser_mix: bool,
    epochs: usize,
    seed: u64,
    ctx: &mut RunCtx,
) -> MechanismResult {
    let mut cfg = SystemConfig::scaled_8core();
    cfg.governor = governor;
    cfg.arbiter = arbiter;
    // The server gets address-space slice 2 so its region never collides
    // with the per-class aggressor slices.
    let mut c0: Vec<Box<dyn Workload>> =
        vec![Box::new(MemcachedGen::new(region_for(2, 0, 1 << 18), seed + 7))];
    c0.extend(if chaser_mix { chasers(0, 3, seed) } else { read_streamers(0, 3, seed) });
    let mut sys = SystemBuilder::new(cfg, RegulationMode::Pabst)
        .class(3, c0)
        .class(1, read_streamers(1, 4, seed))
        .build()
        .expect("valid mechanisms configuration");
    ctx.attach(&mut sys);
    let warm = epochs / 2;
    sys.run_epochs(warm);
    sys.mark_measurement();
    sys.run_epochs(epochs);
    ctx.report(&sys);
    let m = sys.metrics();
    let o0 = m.bw_series.mean_over(0, warm);
    let o1 = m.bw_series.mean_over(1, warm);
    let ec = m.bw_series.epoch_cycles() as f64;
    let error_pct = allocation_error_pct(&[3.0, 1.0], &[o0.max(1.0), o1.max(1.0)]);
    let total_bpc = (o0 + o1) / ec;
    let h = &mut sys.metrics_mut().service[0];
    MechanismResult {
        error_pct,
        total_bpc,
        p95: h.percentile(95.0).unwrap_or(0),
        p99: h.percentile(99.0).unwrap_or(0),
    }
}

/// All SPEC workloads, re-exported for the registry and binaries.
pub fn all_spec() -> [SpecWorkload; 8] {
    ALL_SPEC
}
