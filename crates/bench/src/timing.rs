//! A minimal wall-clock micro-benchmark harness.
//!
//! Replaces the external benchmarking framework (unavailable offline)
//! with the three features the component benches actually use: warmup,
//! repeated timed samples with a median report, and batched setup for
//! benchmarks whose state is consumed by the measured routine.
//!
//! Wall-clock timing is inherently nondeterministic, which is why this
//! module lives in `pabst-bench`, the one crate exempt from the
//! `simlint` determinism rules (see docs/LINTS.md): nothing here feeds
//! back into simulated behaviour.

use std::time::Instant;

/// Number of timed samples per benchmark; the median is reported.
const SAMPLES: usize = 9;

/// Runs one benchmark: `iters` calls of `f` per sample, [`SAMPLES`]
/// samples after one warmup sample, printing `name: <median ns/iter>`.
pub fn bench(name: &str, iters: u64, mut f: impl FnMut()) {
    let time_once = |f: &mut dyn FnMut()| {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        start.elapsed().as_nanos() as u64
    };
    let _warmup = time_once(&mut f);
    let mut ns: Vec<u64> = (0..SAMPLES).map(|_| time_once(&mut f)).collect();
    ns.sort_unstable();
    let median = ns[ns.len() / 2] as f64 / iters as f64;
    println!("{name:<40} {median:>12.1} ns/iter  ({iters} iters x {SAMPLES} samples)");
}

/// Like [`bench`], but rebuilds consumable state per sample: `setup`
/// produces a value, `f` consumes it while timed. One `f` call per
/// sample (for coarse, whole-run benchmarks like a full simulated
/// epoch).
pub fn bench_batched<T>(name: &str, mut setup: impl FnMut() -> T, mut f: impl FnMut(T)) {
    // Warmup.
    f(setup());
    let mut ns: Vec<u64> = (0..SAMPLES)
        .map(|_| {
            let input = setup();
            let start = Instant::now();
            f(input);
            start.elapsed().as_nanos() as u64
        })
        .collect();
    ns.sort_unstable();
    let median = ns[ns.len() / 2] as f64;
    println!("{name:<40} {median:>12.1} ns/run   ({SAMPLES} samples)");
}
