//! Runs every figure regenerator in one process — the full evaluation of
//! the paper, printed as the EXPERIMENTS.md tables.
//!
//! ```text
//! cargo run -p pabst-bench --bin all_figures --release [--quick] [--jobs <n>]
//! ```
//!
//! `--jobs` shards each experiment's grid across worker threads; output
//! is byte-identical at any value. `--filter <name>` runs a single
//! experiment, and `--trace`/`--report-json` write one merged file across
//! everything the invocation ran.

fn main() {
    pabst_bench::harness::drive(&pabst_bench::registry::ALL_FIGURES);
}
