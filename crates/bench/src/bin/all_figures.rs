//! Runs every figure regenerator in sequence — the full evaluation of the
//! paper, printed as the EXPERIMENTS.md tables.
//!
//! ```text
//! cargo run -p pabst-bench --bin all_figures --release [--quick]
//! ```

use std::process::Command;

fn main() {
    let quick = pabst_bench::quick_flag();
    // fig10 prints both the Fig. 10 and Fig. 12 tables (same runs, two
    // metrics), so fig12 is not re-run here.
    let bins = [
        "table03", "fig01", "fig05", "fig06", "fig07", "fig08", "fig09", "fig10", "fig11", "ablate",
    ];
    let exe = std::env::current_exe().expect("current exe");
    let dir = exe.parent().expect("bin dir").to_path_buf();
    for bin in bins {
        println!("\n================================================================");
        println!("== {bin}");
        println!("================================================================\n");
        let mut cmd = Command::new(dir.join(bin));
        if quick {
            cmd.arg("--quick");
        }
        let status = cmd.status().unwrap_or_else(|e| panic!("failed to run {bin}: {e}"));
        assert!(status.success(), "{bin} failed with {status}");
    }
}
