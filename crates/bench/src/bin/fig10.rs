//! Fig. 10: weighted slowdown of 16-core SPEC workloads co-located with a
//! 16-core streaming aggressor at a 32:1 share.
//!
//! Paper result: the aggressor induces an average 2.0x slowdown without
//! QoS; PABST reduces it to ~1.2x; source-only and target-only each help
//! partially and the combination is always best. Prints both the Fig. 10
//! and Fig. 12 tables — the two figures report different metrics of the
//! same runs, so one pass regenerates both.

fn main() {
    pabst_bench::harness::drive(&["fig10"]);
}
