//! Fig. 10: weighted slowdown of 16-core SPEC workloads co-located with a
//! 16-core streaming aggressor at a 32:1 share.
//!
//! Paper result: the aggressor induces an average 2.0x slowdown without
//! QoS; PABST reduces it to ~1.2x; source-only and target-only each help
//! partially and the combination is always best.

use pabst_bench::scenarios::{all_spec, fig10_cell, spec_isolated_ipc, MEASURE_EPOCHS};
use pabst_bench::table::Table;
use pabst_soc::config::RegulationMode;

/// Runs the shared Fig. 10 / Fig. 12 experiment matrix and prints both
/// tables (the two figures report different metrics of the same runs, so
/// one pass regenerates both).
fn main() {
    let epochs = if pabst_bench::quick_flag() { 6 } else { MEASURE_EPOCHS };
    let modes = [
        RegulationMode::None,
        RegulationMode::SourceOnly,
        RegulationMode::TargetOnly,
        RegulationMode::Pabst,
    ];
    let mut slow = Table::new(vec!["workload", "no-QoS", "source-only", "target-only", "pabst"]);
    let mut eff = Table::new(vec![
        "workload",
        "no-QoS",
        "governor-only",
        "arbiter-only",
        "pabst",
        "latency-sensitive",
    ]);
    let mut sums = [0.0f64; 4];
    for w in all_spec() {
        let iso = spec_isolated_ipc(w, epochs);
        let mut slow_cells = Vec::new();
        let mut eff_cells = Vec::new();
        for (i, mode) in modes.iter().enumerate() {
            let c = fig10_cell(w, *mode, iso, epochs);
            sums[i] += c.slowdown;
            slow_cells.push(format!("{:.2}x", c.slowdown));
            eff_cells.push(format!("{:.2}", c.efficiency));
        }
        slow.row(vec![
            w.name().into(),
            slow_cells[0].clone(),
            slow_cells[1].clone(),
            slow_cells[2].clone(),
            slow_cells[3].clone(),
        ]);
        eff.row(vec![
            w.name().into(),
            eff_cells[0].clone(),
            eff_cells[1].clone(),
            eff_cells[2].clone(),
            eff_cells[3].clone(),
            if w.latency_sensitive() { "yes".into() } else { "no".into() },
        ]);
        eprintln!("  done {}", w.name());
    }
    let n = all_spec().len() as f64;
    slow.row(vec![
        "mean".into(),
        format!("{:.2}x", sums[0] / n),
        format!("{:.2}x", sums[1] / n),
        format!("{:.2}x", sums[2] / n),
        format!("{:.2}x", sums[3] / n),
    ]);
    println!("Figure 10 — weighted slowdown vs isolated run (32:1 shares,");
    println!("16 SPEC cores + 16 streaming cores)");
    println!("(paper: avg 2.0x without QoS -> 1.2x with PABST; combination always best)\n");
    print!("{}", slow.render());
    println!();
    println!("Figure 12 — memory efficiency (data-bus utilization) of the same runs");
    println!("(paper: QoS lowers efficiency; drop largest for latency-sensitive workloads)\n");
    print!("{}", eff.render());
}
