//! Chaos campaign: seeded fault plans across the mechanism zoo, with
//! invariant checking, outcome classification, and failure shrinking.

fn main() {
    pabst_bench::harness::drive(&["chaos"]);
}
