//! Calibration sweep: how memory-controller queue geometry and the
//! scheduling horizon shape the Fig. 1 source-vs-target asymmetry.
//!
//! For each configuration, prints the allocation error of source-only and
//! target-only regulation on both Fig. 1 mixes. The paper's qualitative
//! shape is: streams — source accurate / target poor; chaser — source
//! poor / target much better.
//!
//! ```text
//! cargo run -p pabst-bench --bin calibrate --release [--quick]
//! ```

use pabst_bench::scenarios::{fig1_cell_with, Fig1Mix};
use pabst_bench::table::Table;
use pabst_soc::config::{RegulationMode, SystemConfig};

fn main() {
    let epochs = if pabst_bench::quick_flag() { 8 } else { 16 };
    let mut t = Table::new(vec![
        "read_q",
        "ingress",
        "data_buf",
        "stream src%",
        "stream tgt%",
        "chaser src%",
        "chaser tgt%",
    ]);
    for (read_q, ingress, horizon) in [
        (32usize, 16usize, 12u64), // default data buffer
        (64, 4, 12),               // deeper front-end, shallow blind FIFO
        (64, 4, 6),                // + shallower data buffer
    ] {
        let mut cfg = SystemConfig::baseline_32core();
        cfg.dram.read_q_cap = read_q;
        cfg.dram.ingress_cap = ingress;
        cfg.dram.data_buf_cap = horizon as usize;
        let cell = |mix, mode| fig1_cell_with(cfg, mix, mode, epochs).error_pct;
        t.row(vec![
            read_q.to_string(),
            ingress.to_string(),
            horizon.to_string(),
            format!("{:.0}", cell(Fig1Mix::StreamStream, RegulationMode::SourceOnly)),
            format!("{:.0}", cell(Fig1Mix::StreamStream, RegulationMode::TargetOnly)),
            format!("{:.0}", cell(Fig1Mix::ChaserStream, RegulationMode::SourceOnly)),
            format!("{:.0}", cell(Fig1Mix::ChaserStream, RegulationMode::TargetOnly)),
        ]);
        eprintln!("  done rq={read_q} in={ingress} hz={horizon}");
    }
    println!("Calibration — Fig. 1 asymmetry vs controller geometry");
    println!("(want: stream src low / tgt high; chaser src high / tgt low)\n");
    print!("{}", t.render());
}
