//! Calibration sweep: how memory-controller queue geometry and the
//! scheduling horizon shape the Fig. 1 source-vs-target asymmetry.
//!
//! For each configuration, prints the allocation error of source-only and
//! target-only regulation on both Fig. 1 mixes. The paper's qualitative
//! shape is: streams — source accurate / target poor; chaser — source
//! poor / target much better.
//!
//! ```text
//! cargo run -p pabst-bench --bin calibrate --release [--quick]
//! ```

fn main() {
    pabst_bench::harness::drive(&["calibrate"]);
}
