//! Fig. 7 (§IV-C): PABST combines source and target regulation — it
//! tracks whichever single-point regulator is more accurate in each mix.
//!
//! Left three bars: two write-stream classes, 3:1, under source-only /
//! target-only / PABST. Right three bars: chaser (3) + stream (1).

use pabst_bench::scenarios::{fig1_cell, Fig1Mix};
use pabst_bench::table::Table;
use pabst_soc::config::RegulationMode;

fn main() {
    let epochs = if pabst_bench::quick_flag() { 10 } else { 40 };
    let mut t = Table::new(vec!["mix", "regulator", "class0 GB/s", "class1 GB/s", "alloc error %"]);
    for (mix, mix_name) in
        [(Fig1Mix::StreamStream, "write-stream x2"), (Fig1Mix::ChaserStream, "chaser+stream")]
    {
        for mode in [RegulationMode::SourceOnly, RegulationMode::TargetOnly, RegulationMode::Pabst]
        {
            let r = fig1_cell(mix, mode, epochs);
            t.row(vec![
                mix_name.into(),
                mode.label().into(),
                format!("{:.1}", pabst_simkit::bytes_per_cycle_to_gbps(r.bytes_per_cycle[0])),
                format!("{:.1}", pabst_simkit::bytes_per_cycle_to_gbps(r.bytes_per_cycle[1])),
                format!("{:.0}", r.error_pct),
            ]);
        }
    }
    println!("Figure 7 — source and target regulation combined (3:1 target)");
    println!("(paper: PABST tracks the better regulator in each mix; a small");
    println!(" residual error remains with the chaser)\n");
    print!("{}", t.render());
}
