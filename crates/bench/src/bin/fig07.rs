//! Fig. 7 (§IV-C): PABST combines source and target regulation — it
//! tracks whichever single-point regulator is more accurate in each mix.
//!
//! Left three bars: two write-stream classes, 3:1, under source-only /
//! target-only / PABST. Right three bars: chaser (3) + stream (1).

fn main() {
    pabst_bench::harness::drive(&["fig07"]);
}
