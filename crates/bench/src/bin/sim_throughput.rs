//! Self-profiles the simulator: simulated cycles per wall-clock second on
//! the small-test and baseline machines, plus a per-epoch step() timing
//! via the in-repo micro-benchmark harness.
//!
//! Writes `BENCH_sim_throughput.json` (override with `--out <path>`) —
//! the seed of the repo's perf trajectory; CI runs this in `--quick`
//! (smoke) mode and uploads the artifact, and the committed file is the
//! full-mode result the next perf PR measures against.

use std::time::Instant;

use pabst_bench::scenarios::read_streamers;
use pabst_bench::{obs, quick_flag, timing};
use pabst_soc::config::{RegulationMode, SystemConfig};
use pabst_soc::system::{System, SystemBuilder};

/// One profiled configuration.
struct Profile {
    name: &'static str,
    epoch_cycles: u64,
    epochs_timed: u64,
    elapsed_ns: u128,
    cycles_per_sec: u64,
}

fn build(name: &str) -> System {
    let (cfg, per_class) = match name {
        "small" => (SystemConfig::small_test(), 2),
        _ => (SystemConfig::baseline_32core(), 16),
    };
    SystemBuilder::new(cfg, RegulationMode::Pabst)
        .class(3, read_streamers(0, per_class))
        .class(1, read_streamers(1, per_class))
        .build()
        .expect("throughput configuration")
}

fn profile(name: &'static str, epochs: u64) -> Profile {
    let mut sys = build(name);
    sys.run_epochs(1); // warm caches, queues, and the governor
    let epoch_cycles = sys.metrics().bw_series.epoch_cycles();
    let start = Instant::now();
    sys.run_epochs(epochs as usize);
    let elapsed = start.elapsed();
    let cycles = epochs * epoch_cycles;
    let secs = elapsed.as_secs_f64();
    let cps = if secs > 0.0 { (cycles as f64 / secs) as u64 } else { 0 };
    println!(
        "{name:<10} {epochs:>3} epochs x {epoch_cycles} cycles in {:>8.1} ms  ->  {cps} cycles/s",
        secs * 1e3
    );
    Profile {
        name,
        epoch_cycles,
        epochs_timed: epochs,
        elapsed_ns: elapsed.as_nanos(),
        cycles_per_sec: cps,
    }
}

fn to_json(profiles: &[Profile]) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("{\"bench\":\"sim_throughput\",\"configs\":[");
    for (i, p) in profiles.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"name\":\"{}\",\"epoch_cycles\":{},\"epochs_timed\":{},\
             \"elapsed_ns\":{},\"cycles_per_sec\":{}}}",
            p.name, p.epoch_cycles, p.epochs_timed, p.elapsed_ns, p.cycles_per_sec
        );
    }
    s.push_str("]}\n");
    s
}

fn main() {
    let quick = quick_flag();
    let epochs = if quick { 2 } else { 10 };
    println!("simulator throughput ({} mode)", if quick { "smoke" } else { "full" });

    let profiles = vec![profile("small", epochs), profile("baseline", epochs)];

    // Per-epoch wall time through the micro-benchmark harness (median of
    // 9 samples, fresh warmed system per sample) — the step()-path number
    // a perf PR should move.
    if !quick {
        timing::bench_batched(
            "epoch(small_test, 4 streamers)",
            || {
                let mut sys = build("small");
                sys.run_epochs(1);
                sys
            },
            |mut sys| sys.run_epochs(1),
        );
    }

    let out = obs::arg_value("out").unwrap_or_else(|| "BENCH_sim_throughput.json".to_string());
    let json = to_json(&profiles);
    match std::fs::write(&out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => {
            eprintln!("error: cannot write {out}: {e}");
            std::process::exit(1);
        }
    }
}
