//! Self-profiles the simulator: simulated cycles per wall-clock second on
//! the small-test and baseline machines, a per-epoch step() timing via
//! the in-repo micro-benchmark harness, and a serial-vs-parallel sweep
//! comparison through `harness::run_indexed` (the `all_figures` executor).
//!
//! Writes `BENCH_sim_throughput.json` (override with `--out <path>`) —
//! the seed of the repo's perf trajectory; CI runs this in `--quick`
//! (smoke) mode and uploads the artifact, and the committed file is the
//! full-mode result the next perf PR measures against.

use std::time::Instant;

use pabst_bench::obs::CliArgs;
use pabst_bench::scenarios::{read_streamers, region_for};
use pabst_bench::{harness, timing};
use pabst_cpu::Workload;
use pabst_soc::config::{RegulationMode, SystemConfig};
use pabst_soc::system::{System, SystemBuilder};
use pabst_workloads::ChaserGen;

/// One profiled configuration, timed twice: with event-horizon
/// fast-forward (the default execution strategy) and naive per-cycle
/// stepping (`skip(false)`, the `PABST_NO_SKIP` baseline).
struct Profile {
    name: &'static str,
    epoch_cycles: u64,
    epochs_timed: u64,
    elapsed_ns: u128,
    cycles_per_sec: u64,
    noskip_elapsed_ns: u128,
    noskip_cycles_per_sec: u64,
    /// Cycles fast-forwarded during the timed window.
    cycles_skipped: u64,
    /// `cycles_skipped / cycles_timed` — the fraction of simulated time
    /// the skip loop proved dead.
    skip_rate: f64,
}

/// Serial vs parallel wall-clock for a batch of independent runs.
struct SweepProfile {
    runs: usize,
    jobs: usize,
    serial_ns: u128,
    parallel_ns: u128,
}

/// Single-chain pointer chasers: each core walks one dependence chain,
/// so it can never overlap its own misses — the latency-bound,
/// memory-stall-heavy regime the event-horizon fast-forward targets.
fn chasers_1chain(class: usize, n: usize, seed: u64) -> Vec<Box<dyn Workload>> {
    (0..n)
        .map(|i| {
            Box::new(ChaserGen::new(region_for(class, i, 1 << 18), 1, seed + i as u64))
                as Box<dyn Workload>
        })
        .collect()
}

fn build(name: &str, skip: bool) -> System {
    let (mut cfg, per_class) = match name {
        "baseline" => (SystemConfig::baseline_32core(), 16),
        "mesh_64" => (SystemConfig::mesh_64(), 32),
        _ => (SystemConfig::small_test(), 2),
    };
    let b = if name == "chaser" {
        // Quarter-speed DDR (the fig11 static-baseline knob) stretches
        // every miss, so nearly all of simulated time is pure stall.
        cfg.dram = cfg.dram.down_clocked(4);
        SystemBuilder::new(cfg, RegulationMode::Pabst)
            .class(3, chasers_1chain(0, per_class, 0))
            .class(1, chasers_1chain(1, per_class, 0))
    } else {
        SystemBuilder::new(cfg, RegulationMode::Pabst)
            .class(3, read_streamers(0, per_class, 0))
            .class(1, read_streamers(1, per_class, 0))
    };
    b.skip(skip).build().expect("throughput configuration")
}

/// Times `epochs` epochs of `name` in one skip mode, returning the
/// elapsed time, cycles/second, and cycles fast-forwarded in the window.
fn time_run(name: &str, epochs: u64, skip: bool) -> (u128, u64, u64) {
    let mut sys = build(name, skip);
    sys.run_epochs(1); // warm caches, queues, and the governor
    let skipped_before = sys.cycles_skipped();
    let epoch_cycles = sys.metrics().bw_series.epoch_cycles();
    let start = Instant::now();
    sys.run_epochs(epochs as usize);
    let elapsed = start.elapsed();
    let cycles = epochs * epoch_cycles;
    let secs = elapsed.as_secs_f64();
    let cps = if secs > 0.0 { (cycles as f64 / secs) as u64 } else { 0 };
    (elapsed.as_nanos(), cps, sys.cycles_skipped() - skipped_before)
}

fn profile(name: &'static str, epochs: u64) -> Profile {
    let epoch_cycles = build(name, true).metrics().bw_series.epoch_cycles();
    let (elapsed_ns, cps, skipped) = time_run(name, epochs, true);
    let (noskip_ns, noskip_cps, _) = time_run(name, epochs, false);
    let cycles = epochs * epoch_cycles;
    let rate = skipped as f64 / cycles as f64;
    println!(
        "{name:<10} {epochs:>3} epochs x {epoch_cycles} cycles in {:>8.1} ms  ->  {cps} cycles/s \
         (skip rate {:.1}%, naive {noskip_cps} cycles/s)",
        elapsed_ns as f64 / 1e6,
        rate * 100.0,
    );
    Profile {
        name,
        epoch_cycles,
        epochs_timed: epochs,
        elapsed_ns,
        cycles_per_sec: cps,
        noskip_elapsed_ns: noskip_ns,
        noskip_cycles_per_sec: noskip_cps,
        cycles_skipped: skipped,
        skip_rate: rate,
    }
}

/// Times the same batch of independent small-machine runs twice through
/// the sweep executor — once serially, once on `jobs` workers — the
/// wall-clock scaling `all_figures --jobs N` gets on this host.
fn profile_sweep(jobs: usize, runs: usize, epochs: usize) -> SweepProfile {
    let items: Vec<usize> = (0..runs).collect();
    let run_one = |_i: usize, _item: &usize| {
        let mut sys = build("small", true);
        sys.run_epochs(epochs);
    };
    let start = Instant::now();
    harness::run_indexed(1, &items, run_one);
    let serial_ns = start.elapsed().as_nanos();
    let start = Instant::now();
    harness::run_indexed(jobs, &items, run_one);
    let parallel_ns = start.elapsed().as_nanos();
    let speedup = serial_ns as f64 / parallel_ns.max(1) as f64;
    println!(
        "sweep      {runs} x {epochs} small epochs: serial {:>8.1} ms, --jobs {jobs} {:>8.1} ms  ->  {speedup:.2}x",
        serial_ns as f64 / 1e6,
        parallel_ns as f64 / 1e6,
    );
    SweepProfile { runs, jobs, serial_ns, parallel_ns }
}

fn to_json(profiles: &[Profile], sweep: &SweepProfile) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("{\"bench\":\"sim_throughput\",\"configs\":[");
    for (i, p) in profiles.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"name\":\"{}\",\"epoch_cycles\":{},\"epochs_timed\":{},\
             \"elapsed_ns\":{},\"cycles_per_sec\":{},\"noskip_elapsed_ns\":{},\
             \"noskip_cycles_per_sec\":{},\"cycles_skipped\":{},\"skip_rate\":{:.4}}}",
            p.name,
            p.epoch_cycles,
            p.epochs_timed,
            p.elapsed_ns,
            p.cycles_per_sec,
            p.noskip_elapsed_ns,
            p.noskip_cycles_per_sec,
            p.cycles_skipped,
            p.skip_rate
        );
    }
    let _ = writeln!(
        s,
        "],\"sweep\":{{\"runs\":{},\"jobs\":{},\"serial_ns\":{},\"parallel_ns\":{}}}}}",
        sweep.runs, sweep.jobs, sweep.serial_ns, sweep.parallel_ns
    );
    s
}

fn main() {
    let args = CliArgs::parse();
    let quick = args.quick;
    let epochs = if quick { 2 } else { 10 };
    println!("simulator throughput ({} mode)", if quick { "smoke" } else { "full" });

    let profiles = vec![
        profile("small", epochs),
        profile("baseline", epochs),
        profile("mesh_64", epochs),
        profile("chaser", epochs),
    ];

    // Per-epoch wall time through the micro-benchmark harness (median of
    // 9 samples, fresh warmed system per sample) — the step()-path number
    // a perf PR should move.
    if !quick {
        timing::bench_batched(
            "epoch(small_test, 4 streamers)",
            || {
                let mut sys = build("small", true);
                sys.run_epochs(1);
                sys
            },
            |mut sys| sys.run_epochs(1),
        );
    }

    // Sweep scaling through the same executor all_figures uses.
    let sweep_runs = 4;
    let sweep_jobs = harness::worker_count(args.jobs, sweep_runs);
    let sweep = profile_sweep(sweep_jobs, sweep_runs, if quick { 2 } else { 6 });

    let out = args.out.unwrap_or_else(|| "BENCH_sim_throughput.json".to_string());
    let json = to_json(&profiles, &sweep);
    match std::fs::write(&out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => {
            eprintln!("error: cannot write {out}: {e}");
            std::process::exit(1);
        }
    }
}
