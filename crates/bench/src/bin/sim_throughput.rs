//! Self-profiles the simulator: simulated cycles per wall-clock second on
//! the small-test and baseline machines, a per-epoch step() timing via
//! the in-repo micro-benchmark harness, and a serial-vs-parallel sweep
//! comparison through `harness::run_indexed` (the `all_figures` executor).
//!
//! Writes `BENCH_sim_throughput.json` (override with `--out <path>`) —
//! the seed of the repo's perf trajectory; CI runs this in `--quick`
//! (smoke) mode and uploads the artifact, and the committed file is the
//! full-mode result the next perf PR measures against.

use std::time::Instant;

use pabst_bench::obs::CliArgs;
use pabst_bench::scenarios::{read_streamers, region_for};
use pabst_bench::{harness, timing};
use pabst_cpu::Workload;
use pabst_soc::config::{RegulationMode, SystemConfig};
use pabst_soc::system::{System, SystemBuilder};
use pabst_workloads::ChaserGen;

/// One profiled configuration, timed twice: with partitioned cycle
/// skipping (the default execution strategy) and naive per-cycle
/// stepping (`skip(false)`, the `PABST_NO_SKIP` baseline).
struct Profile {
    name: &'static str,
    epoch_cycles: u64,
    epochs_timed: u64,
    elapsed_ns: u128,
    cycles_per_sec: u64,
    noskip_elapsed_ns: u128,
    noskip_cycles_per_sec: u64,
    /// Cycles fast-forwarded by *global* jumps during the timed window.
    cycles_skipped: u64,
    /// `cycles_skipped / cycles_timed` — the fraction of simulated time
    /// the whole machine jumped over at once.
    skip_rate: f64,
    /// Tile-cycles elided by tile-local parking during the window.
    tile_cycles_skipped: u64,
    /// `tile_cycles_skipped / (cycles_timed * tiles)` — the fraction of
    /// per-tile stepping the domain scheduler elided (global jump
    /// windows included: a jump parks everything).
    tile_skip_rate: f64,
    /// Controller-cycles elided by controller parking during the window.
    mc_cycles_skipped: u64,
    /// `mc_cycles_skipped / (cycles_timed * mcs)`.
    mc_skip_rate: f64,
}

/// One cell of the probe-backoff sweep: cycles/second with the given
/// [`pabst_soc::system::SystemBuilder::probe_backoff_cap`].
struct BackoffPoint {
    prof_name: &'static str,
    cap: u64,
    cycles_per_sec: u64,
}

/// Serial vs parallel wall-clock for a batch of independent runs.
struct SweepProfile {
    runs: usize,
    jobs: usize,
    serial_ns: u128,
    parallel_ns: u128,
}

/// Single-chain pointer chasers: each core walks one dependence chain,
/// so it can never overlap its own misses — the latency-bound,
/// memory-stall-heavy regime the event-horizon fast-forward targets.
fn chasers_1chain(class: usize, n: usize, seed: u64) -> Vec<Box<dyn Workload>> {
    (0..n)
        .map(|i| {
            Box::new(ChaserGen::new(region_for(class, i, 1 << 18), 1, seed + i as u64))
                as Box<dyn Workload>
        })
        .collect()
}

fn build(name: &str, skip: bool) -> System {
    build_capped(name, skip, None)
}

fn build_capped(name: &str, skip: bool, cap: Option<u64>) -> System {
    let (mut cfg, per_class) = match name {
        "baseline" => (SystemConfig::baseline_32core(), 16),
        "mesh_64" => (SystemConfig::mesh_64(), 32),
        "mesh_256x16" => (SystemConfig::mesh_256x16(), 32),
        _ => (SystemConfig::small_test(), 2),
    };
    let b = if name == "chaser" {
        // Quarter-speed DDR (the fig11 static-baseline knob) stretches
        // every miss, so nearly all of simulated time is pure stall.
        cfg.dram = cfg.dram.down_clocked(4);
        SystemBuilder::new(cfg, RegulationMode::Pabst)
            .class(3, chasers_1chain(0, per_class, 0))
            .class(1, chasers_1chain(1, per_class, 0))
    } else {
        SystemBuilder::new(cfg, RegulationMode::Pabst)
            .class(3, read_streamers(0, per_class, 0))
            .class(1, read_streamers(1, per_class, 0))
    };
    let b = match cap {
        Some(c) => b.probe_backoff_cap(c),
        None => b,
    };
    b.skip(skip).build().expect("throughput configuration")
}

/// What one timed window measured: wall clock plus the three skip
/// counters (global jumps, tile-cycles parked, controller-cycles
/// parked) and the domain counts that normalise the latter two.
struct TimedRun {
    elapsed_ns: u128,
    cycles_per_sec: u64,
    cycles_skipped: u64,
    tile_cycles_skipped: u64,
    mc_cycles_skipped: u64,
    tiles: u64,
    mcs: u64,
}

/// Times `epochs` epochs of `name` in one skip mode.
fn time_run(name: &str, epochs: u64, skip: bool) -> TimedRun {
    time_run_capped(name, epochs, skip, None)
}

/// [`time_run`] with an optional probe-backoff cap override (the sweep).
fn time_run_capped(name: &str, epochs: u64, skip: bool, cap: Option<u64>) -> TimedRun {
    let mut sys = build_capped(name, skip, cap);
    sys.run_epochs(1); // warm caches, queues, and the governor
    let skipped_before = sys.cycles_skipped();
    let tile_before = sys.tile_cycles_skipped();
    let mc_before = sys.mc_cycles_skipped();
    let epoch_cycles = sys.metrics().bw_series.epoch_cycles();
    let start = Instant::now();
    sys.run_epochs(epochs as usize);
    let elapsed = start.elapsed();
    let cycles = epochs * epoch_cycles;
    let secs = elapsed.as_secs_f64();
    let cps = if secs > 0.0 { (cycles as f64 / secs) as u64 } else { 0 };
    TimedRun {
        elapsed_ns: elapsed.as_nanos(),
        cycles_per_sec: cps,
        cycles_skipped: sys.cycles_skipped() - skipped_before,
        tile_cycles_skipped: sys.tile_cycles_skipped() - tile_before,
        mc_cycles_skipped: sys.mc_cycles_skipped() - mc_before,
        tiles: sys.tiles().len() as u64,
        mcs: sys.mc_count() as u64,
    }
}

fn profile(name: &'static str, epochs: u64) -> Profile {
    let epoch_cycles = build(name, true).metrics().bw_series.epoch_cycles();
    let timed = time_run(name, epochs, true);
    let naive = time_run(name, epochs, false);
    let cycles = epochs * epoch_cycles;
    let rate = timed.cycles_skipped as f64 / cycles as f64;
    let tile_rate = timed.tile_cycles_skipped as f64 / (cycles * timed.tiles) as f64;
    let mc_rate = timed.mc_cycles_skipped as f64 / (cycles * timed.mcs) as f64;
    println!(
        "{name:<12} {epochs:>3} epochs x {epoch_cycles} cycles in {:>8.1} ms  ->  {} cycles/s \
         (global skip {:.1}%, tile-local {:.1}%, mc-local {:.1}%, naive {} cycles/s)",
        timed.elapsed_ns as f64 / 1e6,
        timed.cycles_per_sec,
        rate * 100.0,
        tile_rate * 100.0,
        mc_rate * 100.0,
        naive.cycles_per_sec,
    );
    Profile {
        name,
        epoch_cycles,
        epochs_timed: epochs,
        elapsed_ns: timed.elapsed_ns,
        cycles_per_sec: timed.cycles_per_sec,
        noskip_elapsed_ns: naive.elapsed_ns,
        noskip_cycles_per_sec: naive.cycles_per_sec,
        cycles_skipped: timed.cycles_skipped,
        skip_rate: rate,
        tile_cycles_skipped: timed.tile_cycles_skipped,
        tile_skip_rate: tile_rate,
        mc_cycles_skipped: timed.mc_cycles_skipped,
        mc_skip_rate: mc_rate,
    }
}

/// Times `baseline` and `chaser` across probe-backoff caps — the data
/// behind the `DEFAULT_PROBE_BACKOFF_CAP` choice. A cap of 1 disables
/// backoff (probe every cycle after a failed skip); larger caps let the
/// probe retreat exponentially when the machine stays busy.
fn backoff_sweep(quick: bool) -> Vec<BackoffPoint> {
    let caps: &[u64] = if quick { &[1, 8, 64] } else { &[1, 2, 4, 8, 16, 32, 64] };
    let epochs = if quick { 2 } else { 6 };
    let mut points = Vec::new();
    for prof_name in ["baseline", "chaser"] {
        for &cap in caps {
            let timed = time_run_capped(prof_name, epochs, true, Some(cap));
            println!(
                "backoff    {prof_name:<10} cap {cap:>3}  ->  {} cycles/s",
                timed.cycles_per_sec
            );
            points.push(BackoffPoint { prof_name, cap, cycles_per_sec: timed.cycles_per_sec });
        }
    }
    points
}

/// Times the same batch of independent small-machine runs twice through
/// the sweep executor — once serially, once on `jobs` workers — the
/// wall-clock scaling `all_figures --jobs N` gets on this host.
fn profile_sweep(jobs: usize, runs: usize, epochs: usize) -> SweepProfile {
    let items: Vec<usize> = (0..runs).collect();
    let run_one = |_i: usize, _item: &usize| {
        let mut sys = build("small", true);
        sys.run_epochs(epochs);
    };
    let start = Instant::now();
    harness::run_indexed(1, &items, run_one);
    let serial_ns = start.elapsed().as_nanos();
    let start = Instant::now();
    harness::run_indexed(jobs, &items, run_one);
    let parallel_ns = start.elapsed().as_nanos();
    let speedup = serial_ns as f64 / parallel_ns.max(1) as f64;
    println!(
        "sweep      {runs} x {epochs} small epochs: serial {:>8.1} ms, --jobs {jobs} {:>8.1} ms  ->  {speedup:.2}x",
        serial_ns as f64 / 1e6,
        parallel_ns as f64 / 1e6,
    );
    SweepProfile { runs, jobs, serial_ns, parallel_ns }
}

fn to_json(profiles: &[Profile], backoff: &[BackoffPoint], sweep: &SweepProfile) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("{\"bench\":\"sim_throughput\",\"configs\":[");
    for (i, p) in profiles.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"name\":\"{}\",\"epoch_cycles\":{},\"epochs_timed\":{},\
             \"elapsed_ns\":{},\"cycles_per_sec\":{},\"noskip_elapsed_ns\":{},\
             \"noskip_cycles_per_sec\":{},\"cycles_skipped\":{},\"skip_rate\":{:.4},\
             \"tile_cycles_skipped\":{},\"tile_skip_rate\":{:.4},\
             \"mc_cycles_skipped\":{},\"mc_skip_rate\":{:.4}}}",
            p.name,
            p.epoch_cycles,
            p.epochs_timed,
            p.elapsed_ns,
            p.cycles_per_sec,
            p.noskip_elapsed_ns,
            p.noskip_cycles_per_sec,
            p.cycles_skipped,
            p.skip_rate,
            p.tile_cycles_skipped,
            p.tile_skip_rate,
            p.mc_cycles_skipped,
            p.mc_skip_rate
        );
    }
    s.push_str("],\"backoff_sweep\":[");
    for (i, b) in backoff.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"profile\":\"{}\",\"cap\":{},\"cycles_per_sec\":{}}}",
            b.prof_name, b.cap, b.cycles_per_sec
        );
    }
    let _ = writeln!(
        s,
        "],\"sweep\":{{\"runs\":{},\"jobs\":{},\"serial_ns\":{},\"parallel_ns\":{}}}}}",
        sweep.runs, sweep.jobs, sweep.serial_ns, sweep.parallel_ns
    );
    s
}

fn main() {
    let args = CliArgs::parse();
    let quick = args.quick;
    let epochs = if quick { 2 } else { 10 };
    println!("simulator throughput ({} mode)", if quick { "smoke" } else { "full" });

    let profiles = vec![
        profile("small", epochs),
        profile("baseline", epochs),
        profile("mesh_64", epochs),
        profile("mesh_256x16", epochs),
        profile("chaser", epochs),
    ];

    // Probe-backoff cap sweep — the evidence behind the builder default.
    let backoff = backoff_sweep(quick);

    // Per-epoch wall time through the micro-benchmark harness (median of
    // 9 samples, fresh warmed system per sample) — the step()-path number
    // a perf PR should move.
    if !quick {
        timing::bench_batched(
            "epoch(small_test, 4 streamers)",
            || {
                let mut sys = build("small", true);
                sys.run_epochs(1);
                sys
            },
            |mut sys| sys.run_epochs(1),
        );
    }

    // Sweep scaling through the same executor all_figures uses.
    let sweep_runs = 4;
    let sweep_jobs = harness::worker_count(args.jobs, sweep_runs);
    let sweep = profile_sweep(sweep_jobs, sweep_runs, if quick { 2 } else { 6 });

    let out = args.out.unwrap_or_else(|| "BENCH_sim_throughput.json".to_string());
    let json = to_json(&profiles, &backoff, &sweep);
    match std::fs::write(&out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => {
            eprintln!("error: cannot write {out}: {e}");
            std::process::exit(1);
        }
    }
}
