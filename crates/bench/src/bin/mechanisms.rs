//! Mechanism-zoo sweep: competing governor and arbiter mechanisms.

fn main() {
    pabst_bench::harness::drive(&["mechanisms"]);
}
