//! Fig. 5: proportional allocation over time — two 16-core read-stream
//! classes with strides in a 7:3 ratio converge quickly to a 70%/30%
//! bandwidth split and stay there.

fn main() {
    pabst_bench::harness::drive(&["fig05"]);
}
