//! Fig. 5: proportional allocation over time — two 16-core read-stream
//! classes with strides in a 7:3 ratio converge quickly to a 70%/30%
//! bandwidth split and stay there.

use pabst_bench::scenarios::fig5_series;
use pabst_bench::table::Table;

fn main() {
    let epochs = if pabst_bench::quick_flag() { 15 } else { 60 };
    let s = fig5_series(epochs);
    let mut t = Table::new(vec!["epoch", "class0 GB/s", "class1 GB/s", "class0 share"]);
    for (e, p) in s.points.iter().enumerate() {
        let total: f64 = p.iter().sum();
        t.row(vec![
            e.to_string(),
            format!("{:.1}", pabst_simkit::bytes_per_cycle_to_gbps(p[0])),
            format!("{:.1}", pabst_simkit::bytes_per_cycle_to_gbps(p[1])),
            if total > 0.0 { format!("{:.3}", p[0] / total) } else { "-".into() },
        ]);
    }
    println!("Figure 5 — proportional allocation, 7:3 read streams");
    println!("(paper: quick convergence to a steady 70%/30% split)\n");
    let series0: Vec<f64> = s.points.iter().map(|p| p[0]).collect();
    let series1: Vec<f64> = s.points.iter().map(|p| p[1]).collect();
    println!(
        "{}\n",
        pabst_bench::spark::spark_rows(&["class0 (70%)", "class1 (30%)"], &[series0, series1])
    );
    print!("{}", t.render());
    let from = epochs / 2;
    let mean0: f64 =
        s.points[from..].iter().map(|p| p[0] / (p[0] + p[1])).sum::<f64>() / (epochs - from) as f64;
    println!("\nsteady-state class0 share: {mean0:.3} (target 0.700)");
}
