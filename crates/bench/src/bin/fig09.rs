//! Fig. 9: memcached transaction service times when co-located with a
//! streaming aggressor at a 20:1 share, on the 4x-scaled 8-core machine.
//!
//! Paper result: PABST nearly eliminates both the average service-time
//! degradation and the long tail.

use pabst_bench::scenarios::fig9_run;
use pabst_bench::table::Table;
use pabst_soc::config::RegulationMode;

fn main() {
    let epochs = if pabst_bench::quick_flag() { 20 } else { 40 };
    let mut t = Table::new(vec!["configuration", "txns", "mean (cyc)", "p50", "p95", "p99"]);
    for (label, mode, aggr) in [
        ("isolated", RegulationMode::None, false),
        ("contended, no QoS", RegulationMode::None, true),
        ("contended, PABST 20:1", RegulationMode::Pabst, true),
    ] {
        let r = fig9_run(mode, aggr, epochs);
        t.row(vec![
            label.into(),
            r.count.to_string(),
            format!("{:.0}", r.mean),
            r.p50.to_string(),
            r.p95.to_string(),
            r.p99.to_string(),
        ]);
    }
    println!("Figure 9 — memcached service times under a bandwidth aggressor");
    println!("(paper: PABST nearly restores both the mean and the tail)\n");
    print!("{}", t.render());
}
