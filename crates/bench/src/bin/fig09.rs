//! Fig. 9: memcached transaction service times when co-located with a
//! streaming aggressor at a 20:1 share, on the 4x-scaled 8-core machine.
//!
//! Paper result: PABST nearly eliminates both the average service-time
//! degradation and the long tail.

fn main() {
    pabst_bench::harness::drive(&["fig09"]);
}
