//! Fig. 12: memory efficiency (data-bus utilization) cost of bandwidth
//! QoS, for the Fig. 10 workload mix.
//!
//! Paper result: efficiency is high without QoS, drops when QoS is
//! enabled, and the size of the drop correlates with the workload's
//! latency sensitivity (the target arbiter forces inefficient schedules
//! when it must pick among a latency-bound class's few requests).

fn main() {
    pabst_bench::harness::drive(&["fig12"]);
}
