//! Fig. 12: memory efficiency (data-bus utilization) cost of bandwidth
//! QoS, for the Fig. 10 workload mix.
//!
//! Paper result: efficiency is high without QoS, drops when QoS is
//! enabled, and the size of the drop correlates with the workload's
//! latency sensitivity (the target arbiter forces inefficient schedules
//! when it must pick among a latency-bound class's few requests).

use pabst_bench::scenarios::{all_spec, fig10_cell, spec_isolated_ipc, MEASURE_EPOCHS};
use pabst_bench::table::Table;
use pabst_soc::config::RegulationMode;

fn main() {
    let epochs = if pabst_bench::quick_flag() { 8 } else { MEASURE_EPOCHS };
    let mut t = Table::new(vec![
        "workload",
        "no-QoS",
        "governor-only",
        "arbiter-only",
        "pabst",
        "latency-sensitive",
    ]);
    for w in all_spec() {
        let iso = spec_isolated_ipc(w, epochs);
        let mut cells = Vec::new();
        for mode in [
            RegulationMode::None,
            RegulationMode::SourceOnly,
            RegulationMode::TargetOnly,
            RegulationMode::Pabst,
        ] {
            let c = fig10_cell(w, mode, iso, epochs);
            cells.push(format!("{:.2}", c.efficiency));
        }
        t.row(vec![
            w.name().into(),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
            cells[3].clone(),
            if w.latency_sensitive() { "yes".into() } else { "no".into() },
        ]);
        eprintln!("  done {}", w.name());
    }
    println!("Figure 12 — memory efficiency (data-bus utilization), SPEC +");
    println!("streaming aggressor at 32:1");
    println!("(paper: QoS lowers efficiency; the drop is largest for");
    println!(" latency-sensitive workloads)\n");
    print!("{}", t.render());
}
