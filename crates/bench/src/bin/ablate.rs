//! Ablations of PABST design choices (DESIGN.md §6):
//!
//! * writeback accounting policy (§V-C),
//! * pacer burst window (§III-B3),
//! * arbiter slack (§III-C2),
//! * governor inertia (§III-B1).
//!
//! ```text
//! cargo run -p pabst-bench --bin ablate --release [--quick]
//! ```

use pabst_bench::scenarios::{
    ablate_burst, ablate_inertia, ablate_slack, ablate_writeback, skewed_traffic_utilization,
};
use pabst_bench::table::Table;
use pabst_soc::config::WbAccounting;

fn main() {
    let epochs = if pabst_bench::quick_flag() { 16 } else { 40 };

    println!("Ablation 1 — writeback accounting (write streams, 7:3)\n");
    let mut t = Table::new(vec!["policy", "class0 share", "class1 share"]);
    for (name, p) in [
        ("charge-demand (paper)", WbAccounting::ChargeDemand),
        ("charge-owner", WbAccounting::ChargeOwner),
        ("charge-none", WbAccounting::ChargeNone),
    ] {
        let (s0, s1) = ablate_writeback(p, epochs);
        t.row(vec![name.into(), format!("{s0:.3}"), format!("{s1:.3}")]);
    }
    print!("{}", t.render());

    println!("\nAblation 2 — pacer burst window (read streams, 7:3)\n");
    let mut t = Table::new(vec!["burst (requests)", "alloc error %"]);
    for burst in [1u64, 4, 16, 64, 256] {
        t.row(vec![burst.to_string(), format!("{:.1}", ablate_burst(burst, epochs))]);
    }
    print!("{}", t.render());

    println!("\nAblation 3 — arbiter slack (chaser+stream, 3:1)\n");
    let mut t = Table::new(vec!["slack (vticks)", "alloc error %"]);
    for slack in [8u64, 32, 128, 512, 4096] {
        t.row(vec![slack.to_string(), format!("{:.1}", ablate_slack(slack, epochs))]);
    }
    print!("{}", t.render());

    println!("\nAblation 4 — governor inertia (read streams, 7:3)\n");
    let mut t = Table::new(vec!["inertia (epochs)", "alloc error %", "mean |dM|/M"]);
    for inertia in [1u32, 2, 3, 5, 8] {
        let (err, jitter) = ablate_inertia(inertia, epochs);
        t.row(vec![inertia.to_string(), format!("{err:.1}"), format!("{jitter:.4}")]);
    }
    print!("{}", t.render());

    println!("\nAblation 5 — per-MC governors under skewed traffic (SIII-C1)\n");
    let mut t = Table::new(vec!["regulation granularity", "total GB/s"]);
    for (name, per_mc) in
        [("global wired-OR SAT (paper default)", false), ("per-MC SAT + governor", true)]
    {
        let bpc = skewed_traffic_utilization(per_mc, epochs);
        t.row(vec![name.into(), format!("{:.1}", pabst_simkit::bytes_per_cycle_to_gbps(bpc))]);
    }
    print!("{}", t.render());
}
