//! Ablations of PABST design choices (DESIGN.md §6):
//!
//! * writeback accounting policy (§V-C),
//! * pacer burst window (§III-B3),
//! * arbiter slack (§III-C2),
//! * governor inertia (§III-B1),
//! * per-MC vs global regulation under skewed traffic (§III-C1).
//!
//! ```text
//! cargo run -p pabst-bench --bin ablate --release [--quick]
//! ```

fn main() {
    pabst_bench::harness::drive(&["ablate"]);
}
