//! Fig. 8: proportional distribution of excess bandwidth — an L3-resident
//! class's unused 25% splits 2:1 between 50%- and 25%-share DDR streams
//! (≈66% / 33% observed).

use pabst_bench::scenarios::fig8_run;
use pabst_bench::table::Table;

fn main() {
    let epochs = if pabst_bench::quick_flag() { 20 } else { 60 };
    let r = fig8_run(epochs);
    let mut t = Table::new(vec!["class", "allocation", "observed share"]);
    for (i, (name, alloc)) in
        [("L3-resident stream", "25%"), ("DDR stream (high)", "50%"), ("DDR stream (low)", "25%")]
            .iter()
            .enumerate()
    {
        t.row(vec![name.to_string(), alloc.to_string(), format!("{:.1}%", r.shares[i] * 100.0)]);
    }
    println!("Figure 8 — proportional distribution of excess bandwidth");
    println!("(paper: high DDR stream ~66%, low DDR stream ~33%)\n");
    print!("{}", t.render());
}
