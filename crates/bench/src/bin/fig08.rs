//! Fig. 8: proportional distribution of excess bandwidth — an L3-resident
//! class's unused 25% splits 2:1 between 50%- and 25%-share DDR streams
//! (≈66% / 33% observed).

fn main() {
    pabst_bench::harness::drive(&["fig08"]);
}
