//! Fig. 1: source- vs target-based regulation on two workload mixes with
//! a 3:1 allocation.
//!
//! Paper result: (a) source-only on stream+stream works; (b) target-only
//! on stream+stream has ~76% allocation error; (c) source-only on
//! chaser+stream has ~128% error; (d) target-only on chaser+stream is
//! accurate — neither single regulation point suffices.

fn main() {
    pabst_bench::harness::drive(&["fig01"]);
}
