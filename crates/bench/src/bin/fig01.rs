//! Fig. 1: source- vs target-based regulation on two workload mixes with
//! a 3:1 allocation.
//!
//! Paper result: (a) source-only on stream+stream works; (b) target-only
//! on stream+stream has ~76% allocation error; (c) source-only on
//! chaser+stream has ~128% error; (d) target-only on chaser+stream is far
//! better (~20% residual error).

use pabst_bench::scenarios::{fig1_cell, Fig1Mix};
use pabst_bench::table::Table;
use pabst_soc::config::RegulationMode;

fn main() {
    let epochs = if pabst_bench::quick_flag() { 10 } else { 40 };
    let mut t = Table::new(vec!["mix", "regulator", "class0 GB/s", "class1 GB/s", "alloc error %"]);
    for (mix, mix_name) in
        [(Fig1Mix::StreamStream, "stream+stream"), (Fig1Mix::ChaserStream, "chaser+stream")]
    {
        for mode in [RegulationMode::SourceOnly, RegulationMode::TargetOnly] {
            let r = fig1_cell(mix, mode, epochs);
            t.row(vec![
                mix_name.into(),
                mode.label().into(),
                format!("{:.1}", pabst_simkit::bytes_per_cycle_to_gbps(r.bytes_per_cycle[0])),
                format!("{:.1}", pabst_simkit::bytes_per_cycle_to_gbps(r.bytes_per_cycle[1])),
                format!("{:.0}", r.error_pct),
            ]);
        }
    }
    println!("Figure 1 — source vs target regulation, 3:1 target allocation");
    println!("(paper: b ~76% error, c ~128% error, a and d accurate)\n");
    print!("{}", t.render());
}
