//! Table III: the simulated system configuration, printed from the live
//! `SystemConfig::baseline_32core()` so the table can never drift from
//! the code.

fn main() {
    pabst_bench::harness::drive(&["table03"]);
}
