//! Table III: the simulated system configuration.

use pabst_bench::table::Table;
use pabst_soc::config::SystemConfig;

fn main() {
    let c = SystemConfig::baseline_32core();
    let d = c.dram;
    let mut t = Table::new(vec!["parameter", "value"]);
    let rows: Vec<(&str, String)> = vec![
        ("cores", format!("{} (8x4 tiled SoC), 2 GHz", c.cores)),
        (
            "core",
            format!(
                "OoO, {}-entry ROB, width {}, {} outstanding loads",
                c.core.rob, c.core.width, c.core.max_outstanding
            ),
        ),
        ("L1D", format!("{} KiB, {}-way, {}-cycle", c.l1.bytes() / 1024, c.l1.ways, c.l1_lat)),
        (
            "L2 (private)",
            format!(
                "{} KiB, {}-way, {}-cycle, {} MSHRs",
                c.l2.bytes() / 1024,
                c.l2.ways,
                c.l2_lat,
                c.l2_mshrs
            ),
        ),
        (
            "L3 (shared)",
            format!(
                "{} MiB, {}-way, way-partitioned, {}-cycle",
                c.l3.bytes() / (1024 * 1024),
                c.l3.ways,
                c.l3_lat
            ),
        ),
        ("memory controllers", format!("{}, one DDR channel each", c.mcs)),
        (
            "DRAM",
            format!(
                "{} banks/channel, tRCD/tCL/tRP {}/{}/{} cyc, {} cyc burst (~{:.0} GB/s/channel)",
                d.banks,
                d.t_rcd,
                d.t_cl,
                d.t_rp,
                d.t_burst,
                pabst_simkit::bytes_per_cycle_to_gbps(d.peak_bytes_per_cycle())
            ),
        ),
        (
            "MC queues",
            format!(
                "read {} / write {} front-end, {}-deep ingress, {}-entry data buffer",
                d.read_q_cap, d.write_q_cap, d.ingress_cap, d.data_buf_cap
            ),
        ),
        ("epoch", format!("{} cycles (10 us)", c.epoch_cycles)),
        ("pacer burst", format!("{} requests", c.pacer_burst)),
        ("arbiter slack", format!("{} virtual ticks", c.arbiter_slack)),
    ];
    for (k, v) in rows {
        t.row(vec![k.into(), v]);
    }
    println!("Table III — simulated system configuration\n");
    print!("{}", t.render());
}
