//! Scale study: the global SAT feedback loop as the machine grows from
//! the paper's 32 tiles / 4 controllers to a 256-tile / 16-controller
//! mesh with the distance-modelled network.

fn main() {
    pabst_bench::harness::drive(&["scale"]);
}
