//! Fig. 11: work-conserving fairness in an IaaS consolidation — four
//! equal-share 8-core classes of the same SPEC workload vs a static
//! quarter-bandwidth allocation (isolated run with DDR down-clocked 4x).
//!
//! Paper result: 15–90% performance improvement from work conservation.

use pabst_bench::scenarios::{all_spec, fig11_cell, MEASURE_EPOCHS};
use pabst_bench::table::Table;

fn main() {
    let epochs = if pabst_bench::quick_flag() { 8 } else { MEASURE_EPOCHS };
    let mut t = Table::new(vec!["workload", "static IPC", "PABST IPC", "improvement"]);
    for w in all_spec() {
        let c = fig11_cell(w, epochs);
        t.row(vec![
            w.name().into(),
            format!("{:.3}", c.static_ipc),
            format!("{:.3}", c.pabst_ipc),
            format!("{:+.0}%", c.improvement_pct()),
        ]);
        eprintln!("  done {}", w.name());
    }
    println!("Figure 11 — four consolidated 25%-share classes vs a static");
    println!("quarter-bandwidth allocation");
    println!("(paper: 15-90% improvement thanks to work conservation)\n");
    print!("{}", t.render());
}
