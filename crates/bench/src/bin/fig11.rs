//! Fig. 11: work-conserving fairness in an IaaS consolidation — four
//! equal-share 8-core classes of the same SPEC workload vs a static
//! quarter-bandwidth allocation (isolated run with DDR down-clocked 4x).
//!
//! Paper result: 15–90% performance improvement from work conservation.

fn main() {
    pabst_bench::harness::drive(&["fig11"]);
}
