//! Resilience degradation curve: fault rate vs fairness/throughput.

fn main() {
    pabst_bench::harness::drive(&["resilience"]);
}
