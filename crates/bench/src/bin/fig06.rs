//! Fig. 6: work conservation — a constant 30%-share streamer absorbs
//! nearly 100% of bandwidth whenever the 70%-share periodic streamer
//! enters its cache-resident phase, and is re-throttled on resume.

fn main() {
    pabst_bench::harness::drive(&["fig06"]);
}
