//! Fig. 6: work conservation — a constant 30%-share streamer absorbs
//! nearly 100% of bandwidth whenever the 70%-share periodic streamer
//! enters its cache-resident phase, and is re-throttled on resume.

use pabst_bench::scenarios::fig6_series;
use pabst_bench::table::Table;

fn main() {
    let epochs = if pabst_bench::quick_flag() { 40 } else { 170 };
    let s = fig6_series(epochs);
    let mut t = Table::new(vec!["epoch", "periodic GB/s", "constant GB/s", "constant share"]);
    for (e, p) in s.points.iter().enumerate() {
        let total: f64 = p.iter().sum();
        t.row(vec![
            e.to_string(),
            format!("{:.1}", pabst_simkit::bytes_per_cycle_to_gbps(p[0])),
            format!("{:.1}", pabst_simkit::bytes_per_cycle_to_gbps(p[1])),
            if total > 0.1 { format!("{:.2}", p[1] / total) } else { "-".into() },
        ]);
    }
    println!("Figure 6 — work conservation (periodic 70% + constant 30%)");
    println!("(paper: constant streamer takes ~100% during the partner's idle phases)\n");
    let series0: Vec<f64> = s.points.iter().map(|p| p[0]).collect();
    let series1: Vec<f64> = s.points.iter().map(|p| p[1]).collect();
    println!(
        "{}\n",
        pabst_bench::spark::spark_rows(&["periodic (70%)", "constant (30%)"], &[series0, series1])
    );
    print!("{}", t.render());

    // Summarize the two phases.
    let (mut boosted, mut throttled) = (Vec::new(), Vec::new());
    for p in s.points.iter().skip(10) {
        let total = p[0] + p[1];
        if total < 0.5 {
            continue;
        }
        if p[0] / total < 0.10 {
            boosted.push(p[1]);
        } else if p[0] / total > 0.5 {
            throttled.push(p[1]);
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "\nconstant streamer: {:.1} GB/s while partner active, {:.1} GB/s while partner idle",
        pabst_simkit::bytes_per_cycle_to_gbps(mean(&throttled)),
        pabst_simkit::bytes_per_cycle_to_gbps(mean(&boosted)),
    );
}
