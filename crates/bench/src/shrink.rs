//! Deterministic delta-debugging minimizer for failing fault plans.
//!
//! Given a fault plan whose cell run produced a non-clean outcome and a
//! `reproduces` oracle (re-runs the cell with a candidate plan and
//! answers "same outcome class?"), [`shrink_plan`] greedily reduces the
//! plan while the failure keeps reproducing:
//!
//! 1. **Drop specs** — ddmin at granularity one: repeatedly try removing
//!    each spec; a removal that still reproduces is kept.
//! 2. **Narrow windows** — first clamp `until_epoch` to the cell's
//!    epoch horizon (open-ended `u64::MAX` windows collapse in one
//!    step), then binary-narrow from the top while reproducing.
//! 3. **Reduce intensities** — halve `prob_ppm` and `magnitude` while
//!    reproducing.
//!
//! The loop runs to a fixpoint or the attempt budget, whichever comes
//! first. Everything is deterministic: candidate order is a pure
//! function of the current plan, and the oracle itself is a
//! deterministic simulation, so the minimal plan for a given (campaign
//! seed, index) is stable across machines and `--jobs` counts.

use pabst_simkit::fault::{FaultPlan, FaultSpec};

/// What the minimizer produced.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// The minimized plan (still reproduces the failure).
    pub plan: FaultPlan,
    /// Oracle invocations spent.
    pub attempts: u64,
    /// True when the attempt budget stopped the loop before a fixpoint
    /// (the plan is reduced but possibly not minimal).
    pub hit_cap: bool,
}

fn plan_from(specs: &[FaultSpec]) -> FaultPlan {
    let mut p = FaultPlan::new();
    for &s in specs {
        p.push(s);
    }
    p
}

/// Minimizes `initial` while `reproduces` holds, spending at most
/// `max_attempts` oracle calls. `horizon_epochs` is the cell's total
/// epoch budget — the first window-narrowing candidate clamps
/// open-ended windows to it, so the common `until_epoch: u64::MAX` spec
/// shrinks in one oracle call instead of sixty halvings.
///
/// The initial plan is assumed to reproduce (the caller observed the
/// failure); `reproduces` is never invoked on it.
pub fn shrink_plan(
    initial: &FaultPlan,
    horizon_epochs: u64,
    max_attempts: u64,
    mut reproduces: impl FnMut(&FaultPlan) -> bool,
) -> ShrinkResult {
    let mut specs: Vec<FaultSpec> = initial.specs().to_vec();
    let mut attempts = 0u64;
    let mut hit_cap = false;
    // One oracle call, budget-checked.
    let mut try_specs = |specs: &[FaultSpec], attempts: &mut u64, hit_cap: &mut bool| -> bool {
        if *attempts >= max_attempts {
            *hit_cap = true;
            return false;
        }
        *attempts += 1;
        reproduces(&plan_from(specs))
    };
    loop {
        let mut improved = false;
        // Pass 1: spec removal (ddmin, granularity one).
        let mut i = 0;
        while specs.len() > 1 && i < specs.len() {
            let mut candidate = specs.clone();
            candidate.remove(i);
            if try_specs(&candidate, &mut attempts, &mut hit_cap) {
                specs = candidate;
                improved = true;
            } else {
                i += 1;
            }
            if hit_cap {
                return ShrinkResult { plan: plan_from(&specs), attempts, hit_cap };
            }
        }
        // Pass 2: per-spec reductions, each kind applied while it keeps
        // reproducing.
        for i in 0..specs.len() {
            loop {
                let s = specs[i];
                let candidate_spec = reduce_once(s, horizon_epochs);
                let Some(ns) = candidate_spec else { break };
                let mut candidate = specs.clone();
                candidate[i] = ns;
                if try_specs(&candidate, &mut attempts, &mut hit_cap) {
                    specs = candidate;
                    improved = true;
                } else {
                    break;
                }
            }
            if hit_cap {
                return ShrinkResult { plan: plan_from(&specs), attempts, hit_cap };
            }
        }
        if !improved {
            return ShrinkResult { plan: plan_from(&specs), attempts, hit_cap };
        }
    }
}

/// The next single reduction candidate for one spec, or `None` when the
/// spec is already minimal along every axis. Axis order: window end,
/// probability, magnitude — window reductions come first because they
/// shrink the repro's epoch budget, making later oracle calls cheaper.
fn reduce_once(s: FaultSpec, horizon_epochs: u64) -> Option<FaultSpec> {
    // Clamp an open window to the cell's horizon (anything past it can
    // never fire within the run).
    if s.until_epoch > horizon_epochs {
        return Some(FaultSpec { until_epoch: horizon_epochs, ..s });
    }
    // Narrow the window from the top.
    if s.until_epoch > s.from_epoch {
        let len = s.until_epoch - s.from_epoch;
        return Some(FaultSpec { until_epoch: s.from_epoch + len / 2, ..s });
    }
    // Halve the firing probability (floor 1 ppm keeps it fireable).
    if s.prob_ppm > 1 {
        return Some(FaultSpec { prob_ppm: s.prob_ppm / 2, ..s });
    }
    // Halve the magnitude.
    if s.magnitude > 0 {
        return Some(FaultSpec { magnitude: s.magnitude / 2, ..s });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use pabst_simkit::fault::{FaultKind, PPM_SCALE};

    fn spec(kind: FaultKind, prob_ppm: u64, magnitude: u64) -> FaultSpec {
        FaultSpec {
            kind,
            target: 0,
            from_epoch: 0,
            until_epoch: u64::MAX,
            prob_ppm,
            magnitude,
            seed: 1,
        }
    }

    #[test]
    fn drops_irrelevant_specs_and_clamps_the_survivor() {
        let mut plan = FaultPlan::new();
        plan.push(spec(FaultKind::SatCorrupt, 200_000, 0));
        plan.push(spec(FaultKind::McStall, PPM_SCALE, 0));
        plan.push(spec(FaultKind::CreditLeak, 100_000, 2_000));
        // The failure needs an mc-stall with meaningful probability.
        let oracle = |p: &FaultPlan| {
            p.specs().iter().any(|s| s.kind == FaultKind::McStall && s.prob_ppm >= 400_000)
        };
        let r = shrink_plan(&plan, 18, 64, oracle);
        assert!(!r.hit_cap, "budget must suffice: {} attempts", r.attempts);
        assert_eq!(r.plan.specs().len(), 1, "decoys dropped: {:?}", r.plan.specs());
        let s = r.plan.specs()[0];
        assert_eq!(s.kind, FaultKind::McStall);
        assert!(s.until_epoch <= 18, "open window clamped to the horizon");
        assert!(
            (400_000..800_000).contains(&s.prob_ppm),
            "probability halved to just above the threshold: {}",
            s.prob_ppm
        );
    }

    #[test]
    fn magnitude_shrinks_to_the_reproduction_floor() {
        let mut plan = FaultPlan::new();
        plan.push(spec(FaultKind::CreditLeak, PPM_SCALE, 4_096));
        let oracle = |p: &FaultPlan| p.specs()[0].magnitude >= 100;
        let r = shrink_plan(&plan, 10, 128, oracle);
        let s = r.plan.specs()[0];
        assert!((100..200).contains(&s.magnitude), "{}", s.magnitude);
    }

    #[test]
    fn attempt_budget_is_respected_and_partial_results_still_reproduce() {
        let mut plan = FaultPlan::new();
        for _ in 0..8 {
            plan.push(spec(FaultKind::SatDrop, PPM_SCALE, 0));
        }
        let mut calls = 0u64;
        let r = shrink_plan(&plan, 10, 3, |_| {
            calls += 1;
            true
        });
        assert!(r.hit_cap);
        assert_eq!(r.attempts, 3);
        assert_eq!(calls, 3, "oracle never invoked past the budget");
        assert!(!r.plan.specs().is_empty());
    }

    #[test]
    fn single_spec_plans_never_drop_to_empty() {
        let mut plan = FaultPlan::new();
        plan.push(spec(FaultKind::McStall, 2, 0));
        let r = shrink_plan(&plan, 10, 64, |_| true);
        assert_eq!(r.plan.specs().len(), 1);
        let s = r.plan.specs()[0];
        assert_eq!((s.prob_ppm, s.magnitude), (1, 0), "reduced to the floor, not past it");
    }
}
