//! Benchmark harness for the PABST reproduction.
//!
//! Every paper figure/table is a registered [`harness::Experiment`] in
//! [`registry`]: a grid of independent `(experiment, config)` cells, a
//! cell runner over the [`scenarios`] builders, and a renderer that
//! rebuilds the printed figure from the ordered results. The binaries in
//! `src/bin/` are one-line [`harness::drive`] wrappers.
//!
//! Run everything:
//!
//! ```text
//! cargo run -p pabst-bench --bin all_figures --release -- --jobs 0
//! ```
//!
//! or a single figure, e.g. `cargo run -p pabst-bench --bin fig10 --release`.
//! Every binary accepts the shared [`obs::CliArgs`] flags: `--quick` for a
//! shortened run (fewer epochs, looser numbers), `--jobs <n>` to fan the
//! sweep out over worker threads (output is byte-identical at any value;
//! see `docs/EXPERIMENTS.md`), `--filter <name>` to select one experiment
//! of a multi-experiment driver, and the observability sinks
//! `--trace <path>` / `--report-json <path>` (merged in submission order —
//! see `docs/OBSERVABILITY.md`).
//!
//! The `sim_throughput` binary self-profiles the simulator (simulated
//! cycles per wall-clock second) and writes `BENCH_sim_throughput.json`,
//! the perf trajectory CI tracks.
//!
//! Micro-benchmarks (`cargo bench -p pabst-bench`) use the in-repo
//! [`timing`] harness — the workspace builds without network access, so
//! no external benchmarking framework is pulled in.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod harness;
pub mod obs;
pub mod registry;
pub mod scenarios;
pub mod shrink;
pub mod spark;
pub mod table;
pub mod timing;
