//! Benchmark harness for the PABST reproduction.
//!
//! One runner per paper figure/table lives in [`scenarios`]; the binaries
//! in `src/bin/` call them and print the same rows/series the paper
//! reports. [`table`] renders plain aligned text tables.
//!
//! Run everything:
//!
//! ```text
//! cargo run -p pabst-bench --bin all_figures --release
//! ```
//!
//! or a single figure, e.g. `cargo run -p pabst-bench --bin fig10 --release`.
//! Every binary accepts `--quick` for a shortened run (fewer epochs, looser
//! numbers) used by CI and the micro-benchmark wrappers, plus the
//! observability flags `--trace <path>` (JSONL epoch records) and
//! `--report-json <path>` (end-of-run summary) — see [`obs`] and
//! `docs/OBSERVABILITY.md`.
//!
//! The `sim_throughput` binary self-profiles the simulator (simulated
//! cycles per wall-clock second) and writes `BENCH_sim_throughput.json`,
//! the perf trajectory CI tracks.
//!
//! Micro-benchmarks (`cargo bench -p pabst-bench`) use the in-repo
//! [`timing`] harness — the workspace builds without network access, so
//! no external benchmarking framework is pulled in.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod obs;
pub mod scenarios;
pub mod spark;
pub mod table;
pub mod timing;

/// Parses the common `--quick` flag from `std::env::args`.
pub fn quick_flag() -> bool {
    std::env::args().any(|a| a == "--quick")
}
