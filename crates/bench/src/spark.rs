//! ASCII sparklines for time-series output (Figs. 5, 6, 8).

/// Renders `values` as a one-line sparkline using eighth-block glyphs,
/// scaled to `max` (values above `max` clamp to the tallest glyph).
///
/// # Examples
///
/// ```
/// let s = pabst_bench::spark::sparkline(&[0.0, 0.5, 1.0], 1.0);
/// assert_eq!(s.chars().count(), 3);
/// ```
///
/// # Panics
///
/// Panics if `max` is not positive and finite.
pub fn sparkline(values: &[f64], max: f64) -> String {
    assert!(max.is_finite() && max > 0.0, "sparkline max must be positive");
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    values
        .iter()
        .map(|&v| {
            let frac = (v / max).clamp(0.0, 1.0);
            let idx = ((frac * (GLYPHS.len() - 1) as f64).round()) as usize;
            GLYPHS[idx]
        })
        .collect()
}

/// Renders a labelled multi-row sparkline block: one row per series, all
/// scaled to the common maximum.
pub fn spark_rows(labels: &[&str], series: &[Vec<f64>]) -> String {
    assert_eq!(labels.len(), series.len(), "one label per series");
    let max = series.iter().flat_map(|s| s.iter().copied()).fold(f64::MIN, f64::max).max(1e-12);
    let width = labels.iter().map(|l| l.len()).max().unwrap_or(0);
    labels
        .iter()
        .zip(series)
        .map(|(l, s)| format!("{l:<width$}  {}", sparkline(s, max)))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_matches_input() {
        assert_eq!(sparkline(&[1.0; 10], 2.0).chars().count(), 10);
        assert!(sparkline(&[], 1.0).is_empty());
    }

    #[test]
    fn extremes_map_to_extreme_glyphs() {
        let s: Vec<char> = sparkline(&[0.0, 10.0], 10.0).chars().collect();
        assert_eq!(s[0], '▁');
        assert_eq!(s[1], '█');
    }

    #[test]
    fn clamps_above_max() {
        let s: Vec<char> = sparkline(&[100.0], 1.0).chars().collect();
        assert_eq!(s[0], '█');
    }

    #[test]
    fn rows_share_scale() {
        let out = spark_rows(&["a", "bb"], &[vec![1.0, 1.0], vec![2.0, 0.0]]);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("a "));
        assert!(lines[1].starts_with("bb"));
        // Series "a" at half the common max renders mid-height glyphs.
        assert!(lines[0].contains('▄') || lines[0].contains('▅'));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn bad_max_panics() {
        let _ = sparkline(&[1.0], 0.0);
    }
}
