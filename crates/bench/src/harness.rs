//! Deterministic parallel sweep executor and the `Experiment` descriptor
//! API every figure/ablation binary drives.
//!
//! An experiment is a named parameter grid plus a cell runner and a
//! renderer ([`Experiment`]). The harness shards the grid's independent
//! `(experiment, config)` cells across worker threads
//! ([`run_indexed`]: `std::thread::scope` + one shared atomic work
//! index) and merges every output **in submission order**, so a sweep's
//! stdout, trace JSONL, and report JSON are byte-identical at any
//! `--jobs` value — including `--jobs 1`. The determinism contract rests
//! on three properties:
//!
//! 1. cells never share mutable state — each builds its own `System`
//!    from its [`Params`] and buffers observability output in a private
//!    [`MemSink`] / report list;
//! 2. results land in per-cell slots indexed by submission position, not
//!    in completion order;
//! 3. rendering and file writes happen serially, after the sweep, from
//!    those ordered slots.
//!
//! Worker count defaults to [`std::thread::available_parallelism`] and
//! is capped (or oversubscribed, for scheduling tests) by `--jobs`.
//! Progress lines on **stderr** may interleave under parallel execution;
//! only stdout and the `--trace`/`--report-json` files are covered by
//! the byte-identical guarantee.
//!
//! Cells are additionally **failure-isolated**: each runs under
//! [`std::panic::catch_unwind`], so one panicking cell (a watchdog abort,
//! a scenario bug) becomes a [`CellFailure`] record in the merged output
//! — tagged with experiment/config/seed for one-command repro — instead
//! of killing the whole sweep. Failure records occupy the failed cell's
//! submission-order slot, so the merged report stays deterministic at
//! any `--jobs` value. [`run_cli`] stops after the first experiment with
//! failures unless `--keep-going` is set, and exits non-zero either way.
//!
//! This module is the only place in the workspace allowed to touch
//! `std::thread` (the `thread` simlint rule enforces it).

use std::fs::File;
use std::io::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use pabst_simkit::trace::MemSink;
use pabst_soc::report::SystemReport;
use pabst_soc::system::System;

use crate::obs::CliArgs;
use crate::registry;

/// One grid cell of an experiment: everything a worker needs to rebuild
/// and run the cell, plus the labels the merged output is tagged with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Params {
    /// Name of the owning experiment (registry key).
    pub experiment: &'static str,
    /// Human-readable cell name, unique within the experiment.
    pub config: String,
    /// Position of this cell in the experiment's grid; the cell runner
    /// uses it to recover the typed cell descriptor.
    pub index: usize,
    /// Measured epoch budget.
    pub epochs: usize,
    /// Base RNG seed the cell's workload generators derive from.
    pub seed: u64,
    /// Optional provenance the grid computed up front:
    /// `(mechanism_hash, fault-plan digest)`. Carried into failure
    /// records so a panicking cell still identifies exactly which
    /// mechanism stack and fault plan it was running.
    pub provenance: Option<(u64, u64)>,
}

impl Params {
    /// A cell with seed 0 (the paper runs' default generator base).
    pub fn new(
        experiment: &'static str,
        config: impl Into<String>,
        index: usize,
        epochs: usize,
    ) -> Self {
        Self { experiment, config: config.into(), index, epochs, seed: 0, provenance: None }
    }

    /// Attaches `(mechanism_hash, fault-plan digest)` provenance.
    pub fn with_provenance(mut self, mechanism_hash: u64, fault_digest: u64) -> Self {
        self.provenance = Some((mechanism_hash, fault_digest));
        self
    }
}

/// Per-cell observability context handed to the cell runner.
///
/// Scenario builders call [`RunCtx::attach`] on every `System` they
/// construct and [`RunCtx::report`] after each run; the buffers are
/// merged by the harness in submission order after the sweep.
#[derive(Debug)]
pub struct RunCtx {
    experiment: &'static str,
    config: String,
    seed: u64,
    tracing: bool,
    sink: MemSink,
    reports: Vec<String>,
}

impl RunCtx {
    /// Creates the context for one cell. `tracing` buffers epoch records
    /// (requested via `--trace`); reports are always collected — they
    /// are a few lines per run.
    pub fn new(params: &Params, tracing: bool) -> Self {
        Self {
            experiment: params.experiment,
            config: params.config.clone(),
            seed: params.seed,
            tracing,
            sink: MemSink::new(),
            reports: Vec::new(),
        }
    }

    /// A context outside any sweep (micro-benchmarks, tests): no tracing,
    /// reports tagged `detached`.
    pub fn detached() -> Self {
        Self {
            experiment: "detached",
            config: String::new(),
            seed: 0,
            tracing: false,
            sink: MemSink::new(),
            reports: Vec::new(),
        }
    }

    /// Attaches the cell's buffered trace sink to a freshly built system.
    pub fn attach(&mut self, sys: &mut System) {
        if self.tracing {
            sys.add_trace_sink(Box::new(self.sink.clone()));
        }
    }

    /// Collects the system's end-of-run report, tagged with this cell's
    /// experiment/config/seed.
    pub fn report(&mut self, sys: &System) {
        self.report_labeled(sys, "");
    }

    /// [`RunCtx::report`] with a sub-label for cells that run several
    /// systems (e.g. `fig10`'s isolated baseline plus one per mode).
    pub fn report_labeled(&mut self, sys: &System, label: &str) {
        let config = if label.is_empty() {
            self.config.clone()
        } else {
            format!("{}/{}", self.config, label)
        };
        self.reports.push(
            SystemReport::collect(sys).with_context(self.experiment, &config, self.seed).to_json(),
        );
    }

    /// Seals the context into the cell's result.
    pub fn finish(
        self,
        params: &Params,
        metrics: Vec<(&'static str, f64)>,
        series: Vec<(&'static str, Vec<f64>)>,
    ) -> ExperimentResult {
        ExperimentResult {
            params: params.clone(),
            metrics,
            series,
            trace: self.sink.take(),
            reports: self.reports,
        }
    }
}

/// Everything one cell produced: named scalar metrics, named series, and
/// the buffered observability output.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// The cell that produced this result.
    pub params: Params,
    /// Named scalar metrics (the renderer's table cells).
    pub metrics: Vec<(&'static str, f64)>,
    /// Named per-epoch series (for time-series figures).
    pub series: Vec<(&'static str, Vec<f64>)>,
    /// Buffered JSONL epoch records from every system the cell ran.
    pub trace: String,
    /// Tagged report JSON lines from every system the cell ran.
    pub reports: Vec<String>,
}

impl ExperimentResult {
    /// Looks up a scalar metric by name.
    ///
    /// # Panics
    ///
    /// Panics when the cell runner did not record the metric — a renderer
    /// asking for a missing key is a registry bug, not a runtime state.
    pub fn metric(&self, name: &str) -> f64 {
        match self.metrics.iter().find(|(k, _)| *k == name) {
            Some((_, v)) => *v,
            None => panic!("{}/{}: no metric `{name}`", self.params.experiment, self.params.config),
        }
    }

    /// Looks up a series by name.
    ///
    /// # Panics
    ///
    /// Panics when the series was not recorded (registry bug).
    pub fn series(&self, name: &str) -> &[f64] {
        match self.series.iter().find(|(k, _)| *k == name) {
            Some((_, v)) => v,
            None => panic!("{}/{}: no series `{name}`", self.params.experiment, self.params.config),
        }
    }
}

/// One figure/table/ablation: a parameter grid, a cell runner, and a
/// renderer that rebuilds the printed output from the ordered results.
#[derive(Debug, Clone, Copy)]
pub struct Experiment {
    /// Registry key (`fig05`, `ablate`, ...); also the binary name.
    pub name: &'static str,
    /// One-line description shown by drivers.
    pub title: &'static str,
    /// Expands the grid for a full or `--quick` run. Cell `index` fields
    /// must match their position in the returned vector.
    pub grid: fn(quick: bool) -> Vec<Params>,
    /// Runs one cell. Must derive everything from `Params` and touch no
    /// shared state — the harness may invoke it from any worker thread.
    pub run: fn(&Params, RunCtx) -> ExperimentResult,
    /// Renders the experiment's stdout from the ordered cell results.
    pub render: fn(&[ExperimentResult]) -> String,
}

impl Experiment {
    /// Runs one grid cell through the experiment's cell runner. The
    /// canonical dispatch point for every sweep: simlint roots its
    /// determinism taint analysis here (entropy and hasher-iteration
    /// sinks must be unreachable from any registered runner).
    pub fn run(&self, p: &Params, ctx: RunCtx) -> ExperimentResult {
        (self.run)(p, ctx)
    }
}

/// Resolves the worker count for a sweep of `cells` runnable cells.
///
/// `None` or `Some(0)` take the size from
/// [`std::thread::available_parallelism`];
/// an explicit nonzero `--jobs` is honored exactly (oversubscription is
/// allowed — the determinism test relies on `--jobs 4` meaning four
/// workers even on a single-core host). The count never exceeds the cell
/// count and is at least 1.
pub fn worker_count(requested: Option<usize>, cells: usize) -> usize {
    let auto = std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
    let req = match requested {
        None | Some(0) => auto,
        Some(n) => n,
    };
    req.min(cells.max(1))
}

/// Maps `f` over `items` on up to `jobs` worker threads, returning the
/// results **in item order** regardless of completion order.
///
/// Workers claim items through one shared atomic index and write each
/// result into the slot of the item that produced it, so the output
/// vector is independent of scheduling. With `jobs <= 1` (or a single
/// item) no threads are spawned at all.
pub fn run_indexed<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if jobs <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..jobs.min(items.len()) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(i, &items[i]);
                *slots[i].lock().unwrap_or_else(std::sync::PoisonError::into_inner) = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .expect("every slot is filled once the scope joins")
        })
        .collect()
}

/// One grid cell that panicked instead of producing a result.
#[derive(Debug, Clone)]
pub struct CellFailure {
    /// The cell that failed (experiment/config/index/seed identify it for
    /// a one-command repro).
    pub params: Params,
    /// The panic payload, stringified (`<non-string panic payload>` when
    /// the payload was neither `String` nor `&str`).
    pub panic: String,
}

impl CellFailure {
    /// The failure's merged-report line: same leading context keys as a
    /// success report, plus `"failed":true` and the panic text, so report
    /// consumers can split successes from failures on one key. When the
    /// grid attached provenance, the mechanism hash and fault-plan
    /// digest are appended (as hex strings — they exceed JSON's exact
    /// integer range) so the record pins the exact mechanism stack and
    /// plan alongside the `(seed, index)` pair.
    pub fn to_json(&self) -> String {
        let mut line = format!(
            "{{\"experiment\":\"{}\",\"config\":\"{}\",\"seed\":{},\"failed\":true,\
             \"index\":{},\"panic\":\"{}\"",
            escape_json(self.params.experiment),
            escape_json(&self.params.config),
            self.params.seed,
            self.params.index,
            escape_json(&self.panic)
        );
        if let Some((mech, digest)) = self.params.provenance {
            line.push_str(&format!(
                ",\"mechanism_hash\":\"{mech:#018x}\",\"fault_digest\":\"{digest:#018x}\""
            ));
        }
        line.push('}');
        line
    }

    /// The one-command repro for this cell.
    pub fn repro(&self, bin: &str) -> String {
        format!(
            "cargo run --release -p pabst-bench --bin {bin} -- --filter {} --jobs 1",
            self.params.experiment
        )
    }
}

/// Stringifies a `catch_unwind` payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars) for
/// failure records; panic messages may contain anything.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// The merged, submission-ordered output of one experiment sweep.
#[derive(Debug, Clone)]
pub struct SweepOutput {
    /// The experiment's rendered stdout (with one trailing `FAILED` line
    /// per failed cell).
    pub rendered: String,
    /// Concatenated JSONL epoch records (empty unless tracing).
    pub trace: String,
    /// Concatenated report JSON lines, `\n`-terminated; failed cells
    /// contribute a [`CellFailure::to_json`] line in their slot.
    pub reports: String,
    /// Cells that panicked, in submission order.
    pub failures: Vec<CellFailure>,
}

/// Expands an experiment's grid, runs every cell (in parallel when
/// `jobs > 1`) under per-cell panic isolation, and merges rendered
/// output, trace, and reports in submission order.
///
/// A panicking cell yields a [`CellFailure`] in its submission-order
/// slot: its failure record lands in `reports`, a deterministic `FAILED`
/// line is appended to `rendered`, and the remaining cells still run.
/// The renderer sees only the successful cells (and is itself isolated —
/// a renderer that cannot cope with the survivors degrades to an error
/// line, not a dead sweep).
pub fn run_sweep(exp: &Experiment, quick: bool, jobs: usize, tracing: bool) -> SweepOutput {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    let cells = (exp.grid)(quick);
    let outcomes: Vec<Result<ExperimentResult, CellFailure>> = run_indexed(jobs, &cells, |_, p| {
        catch_unwind(AssertUnwindSafe(|| exp.run(p, RunCtx::new(p, tracing))))
            .map_err(|payload| CellFailure { params: p.clone(), panic: panic_message(payload) })
    });
    let successes: Vec<ExperimentResult> =
        outcomes.iter().filter_map(|o| o.as_ref().ok().cloned()).collect();
    let mut rendered = match catch_unwind(AssertUnwindSafe(|| (exp.render)(&successes))) {
        Ok(s) => s,
        Err(payload) => format!("render failed: {}\n", panic_message(payload)),
    };
    let mut trace = String::new();
    let mut reports = String::new();
    for o in &outcomes {
        match o {
            Ok(r) => {
                trace.push_str(&r.trace);
                for line in &r.reports {
                    reports.push_str(line);
                    reports.push('\n');
                }
            }
            Err(f) => {
                reports.push_str(&f.to_json());
                reports.push('\n');
            }
        }
    }
    let failures: Vec<CellFailure> = outcomes.into_iter().filter_map(Result::err).collect();
    for f in &failures {
        let first = f.panic.lines().next().unwrap_or("");
        rendered.push_str(&format!(
            "FAILED {}/{} (seed {}): {first}\n  repro: {}\n",
            f.params.experiment,
            f.params.config,
            f.params.seed,
            f.repro(exp.name)
        ));
    }
    SweepOutput { rendered, trace, reports, failures }
}

/// CLI entry point shared by every figure binary: parses [`CliArgs`] and
/// runs the named experiments. Binaries are one-liners over this.
pub fn drive(names: &[&str]) {
    let args = CliArgs::parse();
    run_cli(names, &args);
}

/// [`drive`] with pre-parsed arguments. Prints each experiment's output
/// to stdout (with a banner between experiments when more than one runs)
/// and writes the merged trace/report files at the end, so one
/// invocation produces one coherent file per flag even across
/// experiments.
pub fn run_cli(names: &[&str], args: &CliArgs) {
    if args.no_skip {
        // The CI A/B arm: every system this invocation builds steps
        // naively, as under PABST_NO_SKIP=1. Output must be identical.
        pabst_soc::system::force_no_skip();
    }
    let selected: Vec<&'static Experiment> = names
        .iter()
        .filter(|n| args.filter.as_deref().is_none_or(|f| f == **n))
        .map(|n| match registry::find(n) {
            Some(exp) => exp,
            None => {
                eprintln!("error: no experiment named `{n}`");
                std::process::exit(2);
            }
        })
        .collect();
    if selected.is_empty() {
        eprintln!(
            "error: --filter `{}` matches none of: {}",
            args.filter.as_deref().unwrap_or(""),
            names.join(", ")
        );
        std::process::exit(2);
    }
    let banner = names.len() > 1;
    let mut trace = String::new();
    let mut reports = String::new();
    let mut failed_cells = 0usize;
    for exp in selected {
        if banner {
            println!("\n================================================================");
            println!("== {}", exp.name);
            println!("================================================================\n");
        }
        let cells = (exp.grid)(args.quick).len();
        let jobs = worker_count(args.jobs, cells);
        let out = run_sweep(exp, args.quick, jobs, args.trace.is_some());
        print!("{}", out.rendered);
        trace.push_str(&out.trace);
        reports.push_str(&out.reports);
        if !out.failures.is_empty() {
            failed_cells += out.failures.len();
            if !args.keep_going {
                eprintln!(
                    "error: {} cell(s) failed in `{}`; stopping (pass --keep-going to continue)",
                    out.failures.len(),
                    exp.name
                );
                break;
            }
        }
    }
    if let Some(path) = &args.trace {
        write_merged(path, &trace);
    }
    if let Some(path) = &args.report_json {
        write_merged(path, &reports);
    }
    if failed_cells > 0 {
        eprintln!("error: {failed_cells} cell(s) failed");
        std::process::exit(1);
    }
}

/// Writes one merged observability file, warning (not failing) on I/O
/// errors like the pre-harness per-binary hooks did.
fn write_merged(path: &str, contents: &str) {
    let res = File::create(path).and_then(|mut f| f.write_all(contents.as_bytes()));
    if let Err(e) = res {
        eprintln!("warning: cannot write {path}: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn run_indexed_preserves_submission_order_under_reverse_completion() {
        // Adversarial schedule: item i sleeps (n - i) * 10ms, so with one
        // worker per item the cells *complete* in exactly reverse
        // submission order. The result vector must not care.
        let items: Vec<usize> = (0..4).collect();
        let done = Mutex::new(Vec::new());
        let results = run_indexed(items.len(), &items, |i, &item| {
            assert_eq!(i, item, "index matches the item's position");
            std::thread::sleep(Duration::from_millis(10 * (items.len() - i) as u64));
            done.lock().unwrap().push(i);
            i * 100
        });
        assert_eq!(results, vec![0, 100, 200, 300], "slots, not completion order");
        let completion = done.into_inner().unwrap();
        assert_eq!(completion, vec![3, 2, 1, 0], "the schedule really was adversarial");
    }

    #[test]
    fn run_indexed_serial_and_parallel_agree() {
        let items: Vec<u64> = (0..23).collect();
        let f = |i: usize, &x: &u64| x * x + i as u64;
        assert_eq!(run_indexed(1, &items, f), run_indexed(7, &items, f));
    }

    #[test]
    fn run_indexed_handles_empty_and_oversubscribed_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(run_indexed::<_, u8, _>(4, &empty, |_, &x| x).is_empty());
        let one = [9u8];
        assert_eq!(run_indexed(16, &one, |_, &x| x), vec![9]);
    }

    #[test]
    fn worker_count_clamps_to_cells_and_floor_one() {
        assert_eq!(worker_count(Some(8), 3), 3, "never more workers than cells");
        assert_eq!(worker_count(Some(2), 100), 2, "--jobs caps the count");
        assert!(worker_count(None, 100) >= 1);
        assert_eq!(worker_count(Some(0), 0), 1, "empty grid still gets one worker");
    }

    #[test]
    fn detached_ctx_buffers_nothing() {
        let ctx = RunCtx::detached();
        assert!(!ctx.tracing);
        let p = Params::new("t", "c", 0, 1);
        let r = ctx.finish(&p, vec![("m", 1.0)], Vec::new());
        assert!(r.trace.is_empty());
        assert!(r.reports.is_empty());
        assert_eq!(r.metric("m"), 1.0);
    }

    #[test]
    #[should_panic(expected = "no metric")]
    fn missing_metric_names_the_cell() {
        let p = Params::new("t", "c", 0, 1);
        let r = RunCtx::new(&p, false).finish(&p, Vec::new(), Vec::new());
        let _ = r.metric("absent");
    }

    fn flaky_grid(_quick: bool) -> Vec<Params> {
        (0..4).map(|i| Params::new("flaky", format!("cell{i}"), i, 1)).collect()
    }
    fn flaky_run(p: &Params, ctx: RunCtx) -> ExperimentResult {
        assert!(p.index != 2, "deliberate cell panic for the harness isolation test");
        ctx.finish(p, vec![("v", p.index as f64)], Vec::new())
    }
    fn flaky_render(rs: &[ExperimentResult]) -> String {
        let cells: Vec<String> = rs.iter().map(|r| format!("{}", r.metric("v"))).collect();
        format!("flaky: {}\n", cells.join(" "))
    }
    const FLAKY: Experiment = Experiment {
        name: "flaky",
        title: "deliberately panicking grid",
        grid: flaky_grid,
        run: flaky_run,
        render: flaky_render,
    };

    #[test]
    fn panicking_cell_becomes_a_failure_record_not_a_dead_sweep() {
        let out = run_sweep(&FLAKY, true, 1, false);
        assert_eq!(out.failures.len(), 1);
        assert_eq!(out.failures[0].params.config, "cell2");
        assert!(
            out.failures[0].panic.contains("deliberate cell panic"),
            "{}",
            out.failures[0].panic
        );
        assert!(out.rendered.starts_with("flaky: 0 1 3\n"), "{}", out.rendered);
        assert!(out.rendered.contains("FAILED flaky/cell2 (seed 0):"), "{}", out.rendered);
        assert!(out.rendered.contains("--filter flaky --jobs 1"), "{}", out.rendered);
        let recs: Vec<&str> = out.reports.lines().collect();
        assert_eq!(recs.len(), 1, "the failure record holds the failed cell's report slot");
        assert!(
            recs[0].starts_with(
                "{\"experiment\":\"flaky\",\"config\":\"cell2\",\"seed\":0,\"failed\":true"
            ),
            "{}",
            recs[0]
        );
    }

    #[test]
    fn failure_records_are_deterministic_across_job_counts() {
        let serial = run_sweep(&FLAKY, true, 1, false);
        let parallel = run_sweep(&FLAKY, true, 4, false);
        assert_eq!(serial.rendered, parallel.rendered);
        assert_eq!(serial.reports, parallel.reports);
        assert_eq!(serial.failures.len(), parallel.failures.len());
    }

    #[test]
    fn escape_json_handles_quotes_newlines_and_controls() {
        assert_eq!(escape_json("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}
