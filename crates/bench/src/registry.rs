//! The experiment registry: every paper figure, table, ablation, and
//! calibration sweep as an [`Experiment`] descriptor.
//!
//! Each entry decomposes a figure into independent grid cells (one
//! `(experiment, config)` run each — for the SPEC figures one cell is a
//! whole workload row, because its mode runs share the isolated-IPC
//! baseline), a cell runner over the [`crate::scenarios`] builders, and
//! a renderer that rebuilds the figure's printed output from the
//! submission-ordered results. The `src/bin/` binaries are one-line
//! [`crate::harness::drive`] calls over these names.

use crate::harness::{Experiment, ExperimentResult, Params, RunCtx};
use crate::scenarios::{
    ablate_burst, ablate_inertia, ablate_slack, ablate_writeback, all_spec, fig10_cell, fig11_cell,
    fig1_cell, fig1_cell_with, fig5_series, fig6_series, fig8_run, fig9_run, mechanisms_cell,
    resilience_cell, scale_cell, skewed_traffic_utilization, spec_isolated_ipc, Fig1Mix,
    MEASURE_EPOCHS,
};
use crate::table::Table;
use pabst_core::governor::GovernorKind;
use pabst_dram::ArbiterMode;
use pabst_simkit::bytes_per_cycle_to_gbps;
use pabst_simkit::fault::{FaultKind, FaultPlan, FaultSpec};
use pabst_soc::config::{RegulationMode, SystemConfig, WbAccounting};

/// The experiment names `all_figures` runs, in printing order. `fig10`
/// prints both the Fig. 10 and Fig. 12 tables (same runs, two metrics),
/// so `fig12` is not in the list.
pub const ALL_FIGURES: [&str; 10] =
    ["table03", "fig01", "fig05", "fig06", "fig07", "fig08", "fig09", "fig10", "fig11", "ablate"];

/// Every registered experiment.
pub static EXPERIMENTS: [Experiment; 16] = [
    Experiment {
        name: "table03",
        title: "Table III — simulated system configuration",
        grid: table03_grid,
        run: table03_run,
        render: table03_render,
    },
    Experiment {
        name: "fig01",
        title: "Fig. 1 — source vs target regulation on two mixes",
        grid: fig01_grid,
        run: fig01_run,
        render: fig01_render,
    },
    Experiment {
        name: "fig05",
        title: "Fig. 5 — proportional allocation over time (7:3)",
        grid: fig05_grid,
        run: fig05_run,
        render: fig05_render,
    },
    Experiment {
        name: "fig06",
        title: "Fig. 6 — work conservation under a periodic partner",
        grid: fig06_grid,
        run: fig06_run,
        render: fig06_render,
    },
    Experiment {
        name: "fig07",
        title: "Fig. 7 — source and target regulation combined",
        grid: fig07_grid,
        run: fig07_run,
        render: fig07_render,
    },
    Experiment {
        name: "fig08",
        title: "Fig. 8 — proportional distribution of excess bandwidth",
        grid: fig08_grid,
        run: fig08_run_cell,
        render: fig08_render,
    },
    Experiment {
        name: "fig09",
        title: "Fig. 9 — memcached service times under an aggressor",
        grid: fig09_grid,
        run: fig09_run_cell,
        render: fig09_render,
    },
    Experiment {
        name: "fig10",
        title: "Figs. 10 & 12 — SPEC slowdown and memory efficiency",
        grid: fig10_grid,
        run: spec_matrix_run,
        render: fig10_render,
    },
    Experiment {
        name: "fig11",
        title: "Fig. 11 — work-conserving IaaS consolidation",
        grid: fig11_grid,
        run: fig11_run,
        render: fig11_render,
    },
    Experiment {
        name: "fig12",
        title: "Fig. 12 — memory efficiency cost of bandwidth QoS",
        grid: fig12_grid,
        run: spec_matrix_run,
        render: fig12_render,
    },
    Experiment {
        name: "ablate",
        title: "Ablations of PABST design choices (DESIGN.md §6)",
        grid: ablate_grid,
        run: ablate_run,
        render: ablate_render,
    },
    Experiment {
        name: "calibrate",
        title: "Calibration — Fig. 1 asymmetry vs controller geometry",
        grid: calibrate_grid,
        run: calibrate_run,
        render: calibrate_render,
    },
    Experiment {
        name: "resilience",
        title: "Resilience — fault rate vs fairness/throughput degradation",
        grid: resilience_grid,
        run: resilience_run,
        render: resilience_render,
    },
    Experiment {
        name: "scale",
        title: "Scale — the global SAT loop as tiles and controllers grow",
        grid: scale_grid,
        run: scale_run,
        render: scale_render,
    },
    Experiment {
        name: "mechanisms",
        title: "Mechanisms — the governor x arbiter zoo (docs/MECHANISMS.md)",
        grid: mechanisms_grid,
        run: mechanisms_run,
        render: mechanisms_render,
    },
    // Deliberately not in ALL_FIGURES: the campaign validates the
    // machinery, it reproduces no paper figure.
    Experiment {
        name: "chaos",
        title: "Chaos — seeded fault campaign with invariants and shrinking (docs/RESILIENCE.md)",
        grid: crate::chaos::chaos_grid,
        run: crate::chaos::chaos_run,
        render: crate::chaos::chaos_render,
    },
];

/// Looks an experiment up by registry key.
pub fn find(name: &str) -> Option<&'static Experiment> {
    EXPERIMENTS.iter().find(|e| e.name == name)
}

fn gbps(bpc: f64) -> String {
    format!("{:.1}", bytes_per_cycle_to_gbps(bpc))
}

// ---------------------------------------------------------------------
// Table III.
// ---------------------------------------------------------------------

fn table03_grid(_quick: bool) -> Vec<Params> {
    vec![Params::new("table03", "baseline_32core", 0, 0)]
}

fn table03_run(p: &Params, ctx: RunCtx) -> ExperimentResult {
    ctx.finish(p, Vec::new(), Vec::new())
}

fn table03_render(_results: &[ExperimentResult]) -> String {
    let c = SystemConfig::baseline_32core();
    let d = c.dram;
    let mut t = Table::new(vec!["parameter", "value"]);
    let rows: Vec<(&str, String)> = vec![
        ("cores", format!("{} (8x4 tiled SoC), 2 GHz", c.cores)),
        (
            "core",
            format!(
                "OoO, {}-entry ROB, width {}, {} outstanding loads",
                c.core.rob, c.core.width, c.core.max_outstanding
            ),
        ),
        ("L1D", format!("{} KiB, {}-way, {}-cycle", c.l1.bytes() / 1024, c.l1.ways, c.l1_lat)),
        (
            "L2 (private)",
            format!(
                "{} KiB, {}-way, {}-cycle, {} MSHRs",
                c.l2.bytes() / 1024,
                c.l2.ways,
                c.l2_lat,
                c.l2_mshrs
            ),
        ),
        (
            "L3 (shared)",
            format!(
                "{} MiB, {}-way, way-partitioned, {}-cycle",
                c.l3.bytes() / (1024 * 1024),
                c.l3.ways,
                c.l3_lat
            ),
        ),
        ("memory controllers", format!("{}, one DDR channel each", c.mcs)),
        (
            "DRAM",
            format!(
                "{} banks/channel, tRCD/tCL/tRP {}/{}/{} cyc, {} cyc burst (~{:.0} GB/s/channel)",
                d.banks,
                d.t_rcd,
                d.t_cl,
                d.t_rp,
                d.t_burst,
                bytes_per_cycle_to_gbps(d.peak_bytes_per_cycle())
            ),
        ),
        (
            "MC queues",
            format!(
                "read {} / write {} front-end, {}-deep ingress, {}-entry data buffer",
                d.read_q_cap, d.write_q_cap, d.ingress_cap, d.data_buf_cap
            ),
        ),
        ("epoch", format!("{} cycles (10 us)", c.epoch_cycles)),
        ("pacer burst", format!("{} requests", c.pacer_burst)),
        ("arbiter slack", format!("{} virtual ticks", c.arbiter_slack)),
    ];
    for (k, v) in rows {
        t.row(vec![k.into(), v]);
    }
    format!("Table III — simulated system configuration\n\n{}", t.render())
}

// ---------------------------------------------------------------------
// Figs. 1 and 7 (same cell shape, different mode sets and labels).
// ---------------------------------------------------------------------

fn fig01_cells() -> Vec<(Fig1Mix, &'static str, RegulationMode)> {
    let mut cells = Vec::new();
    for (mix, mix_name) in
        [(Fig1Mix::StreamStream, "stream+stream"), (Fig1Mix::ChaserStream, "chaser+stream")]
    {
        for mode in [RegulationMode::SourceOnly, RegulationMode::TargetOnly] {
            cells.push((mix, mix_name, mode));
        }
    }
    cells
}

fn fig07_cells() -> Vec<(Fig1Mix, &'static str, RegulationMode)> {
    let mut cells = Vec::new();
    for (mix, mix_name) in
        [(Fig1Mix::StreamStream, "write-stream x2"), (Fig1Mix::ChaserStream, "chaser+stream")]
    {
        for mode in [RegulationMode::SourceOnly, RegulationMode::TargetOnly, RegulationMode::Pabst]
        {
            cells.push((mix, mix_name, mode));
        }
    }
    cells
}

fn alloc_grid(
    experiment: &'static str,
    cells: &[(Fig1Mix, &'static str, RegulationMode)],
    epochs: usize,
) -> Vec<Params> {
    cells
        .iter()
        .enumerate()
        .map(|(i, (_, mix_name, mode))| {
            Params::new(experiment, format!("{mix_name}/{}", mode.label()), i, epochs)
        })
        .collect()
}

fn alloc_run(
    cells: &[(Fig1Mix, &'static str, RegulationMode)],
    p: &Params,
    mut ctx: RunCtx,
) -> ExperimentResult {
    let (mix, _, mode) = cells[p.index];
    let r = fig1_cell(mix, mode, p.epochs, p.seed, &mut ctx);
    ctx.finish(
        p,
        vec![
            ("bpc0", r.bytes_per_cycle[0]),
            ("bpc1", r.bytes_per_cycle[1]),
            ("error_pct", r.error_pct),
        ],
        Vec::new(),
    )
}

fn alloc_table(
    cells: &[(Fig1Mix, &'static str, RegulationMode)],
    results: &[ExperimentResult],
) -> Table {
    let mut t = Table::new(vec!["mix", "regulator", "class0 GB/s", "class1 GB/s", "alloc error %"]);
    for (r, (_, mix_name, mode)) in results.iter().zip(cells) {
        t.row(vec![
            (*mix_name).into(),
            mode.label().into(),
            gbps(r.metric("bpc0")),
            gbps(r.metric("bpc1")),
            format!("{:.0}", r.metric("error_pct")),
        ]);
    }
    t
}

fn fig01_grid(quick: bool) -> Vec<Params> {
    alloc_grid("fig01", &fig01_cells(), if quick { 10 } else { 40 })
}

fn fig01_run(p: &Params, ctx: RunCtx) -> ExperimentResult {
    alloc_run(&fig01_cells(), p, ctx)
}

fn fig01_render(results: &[ExperimentResult]) -> String {
    format!(
        "Figure 1 — source vs target regulation, 3:1 target allocation\n\
         (paper: b ~76% error, c ~128% error, a and d accurate)\n\n{}",
        alloc_table(&fig01_cells(), results).render()
    )
}

fn fig07_grid(quick: bool) -> Vec<Params> {
    alloc_grid("fig07", &fig07_cells(), if quick { 10 } else { 40 })
}

fn fig07_run(p: &Params, ctx: RunCtx) -> ExperimentResult {
    alloc_run(&fig07_cells(), p, ctx)
}

fn fig07_render(results: &[ExperimentResult]) -> String {
    format!(
        "Figure 7 — source and target regulation combined (3:1 target)\n\
         (paper: PABST tracks the better regulator in each mix; a small\n \
         residual error remains with the chaser)\n\n{}",
        alloc_table(&fig07_cells(), results).render()
    )
}

// ---------------------------------------------------------------------
// Figs. 5 and 6: time-series experiments (one cell each).
// ---------------------------------------------------------------------

fn series_metrics(points: &[Vec<f64>]) -> (Vec<f64>, Vec<f64>) {
    let s0: Vec<f64> = points.iter().map(|p| p[0]).collect();
    let s1: Vec<f64> = points.iter().map(|p| p[1]).collect();
    (s0, s1)
}

fn fig05_grid(quick: bool) -> Vec<Params> {
    vec![Params::new("fig05", "7:3 read streams", 0, if quick { 15 } else { 60 })]
}

fn fig05_run(p: &Params, mut ctx: RunCtx) -> ExperimentResult {
    let s = fig5_series(p.epochs, p.seed, &mut ctx);
    let (s0, s1) = series_metrics(&s.points);
    ctx.finish(p, Vec::new(), vec![("class0", s0), ("class1", s1)])
}

fn fig05_render(results: &[ExperimentResult]) -> String {
    let r = &results[0];
    let (s0, s1) = (r.series("class0"), r.series("class1"));
    let mut t = Table::new(vec!["epoch", "class0 GB/s", "class1 GB/s", "class0 share"]);
    for (e, (&p0, &p1)) in s0.iter().zip(s1).enumerate() {
        let total = p0 + p1;
        t.row(vec![
            e.to_string(),
            gbps(p0),
            gbps(p1),
            if total > 0.0 { format!("{:.3}", p0 / total) } else { "-".into() },
        ]);
    }
    let epochs = r.params.epochs;
    let from = epochs / 2;
    let mean0: f64 =
        s0[from..].iter().zip(&s1[from..]).map(|(&p0, &p1)| p0 / (p0 + p1)).sum::<f64>()
            / (epochs - from) as f64;
    format!(
        "Figure 5 — proportional allocation, 7:3 read streams\n\
         (paper: quick convergence to a steady 70%/30% split)\n\n{}\n\n{}\n\
         steady-state class0 share: {mean0:.3} (target 0.700)\n",
        crate::spark::spark_rows(&["class0 (70%)", "class1 (30%)"], &[s0.to_vec(), s1.to_vec()]),
        t.render()
    )
}

fn fig06_grid(quick: bool) -> Vec<Params> {
    vec![Params::new("fig06", "periodic 70% + constant 30%", 0, if quick { 40 } else { 170 })]
}

fn fig06_run(p: &Params, mut ctx: RunCtx) -> ExperimentResult {
    let s = fig6_series(p.epochs, p.seed, &mut ctx);
    let (s0, s1) = series_metrics(&s.points);
    ctx.finish(p, Vec::new(), vec![("periodic", s0), ("constant", s1)])
}

fn fig06_render(results: &[ExperimentResult]) -> String {
    let r = &results[0];
    let (s0, s1) = (r.series("periodic"), r.series("constant"));
    let mut t = Table::new(vec!["epoch", "periodic GB/s", "constant GB/s", "constant share"]);
    for (e, (&p0, &p1)) in s0.iter().zip(s1).enumerate() {
        let total = p0 + p1;
        t.row(vec![
            e.to_string(),
            gbps(p0),
            gbps(p1),
            if total > 0.1 { format!("{:.2}", p1 / total) } else { "-".into() },
        ]);
    }
    // Summarize the two phases.
    let (mut boosted, mut throttled) = (Vec::new(), Vec::new());
    for (&p0, &p1) in s0.iter().zip(s1).skip(10) {
        let total = p0 + p1;
        if total < 0.5 {
            continue;
        }
        if p0 / total < 0.10 {
            boosted.push(p1);
        } else if p0 / total > 0.5 {
            throttled.push(p1);
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    format!(
        "Figure 6 — work conservation (periodic 70% + constant 30%)\n\
         (paper: constant streamer takes ~100% during the partner's idle phases)\n\n{}\n\n{}\n\
         constant streamer: {:.1} GB/s while partner active, {:.1} GB/s while partner idle\n",
        crate::spark::spark_rows(
            &["periodic (70%)", "constant (30%)"],
            &[s0.to_vec(), s1.to_vec()]
        ),
        t.render(),
        bytes_per_cycle_to_gbps(mean(&throttled)),
        bytes_per_cycle_to_gbps(mean(&boosted)),
    )
}

// ---------------------------------------------------------------------
// Fig. 8.
// ---------------------------------------------------------------------

fn fig08_grid(quick: bool) -> Vec<Params> {
    vec![Params::new("fig08", "resident + high/low DDR", 0, if quick { 20 } else { 60 })]
}

fn fig08_run_cell(p: &Params, mut ctx: RunCtx) -> ExperimentResult {
    let r = fig8_run(p.epochs, p.seed, &mut ctx);
    ctx.finish(
        p,
        vec![("share0", r.shares[0]), ("share1", r.shares[1]), ("share2", r.shares[2])],
        Vec::new(),
    )
}

fn fig08_render(results: &[ExperimentResult]) -> String {
    let r = &results[0];
    let mut t = Table::new(vec!["class", "allocation", "observed share"]);
    for (i, (name, alloc)) in
        [("L3-resident stream", "25%"), ("DDR stream (high)", "50%"), ("DDR stream (low)", "25%")]
            .iter()
            .enumerate()
    {
        let share = r.metric(["share0", "share1", "share2"][i]);
        t.row(vec![name.to_string(), alloc.to_string(), format!("{:.1}%", share * 100.0)]);
    }
    format!(
        "Figure 8 — proportional distribution of excess bandwidth\n\
         (paper: high DDR stream ~66%, low DDR stream ~33%)\n\n{}",
        t.render()
    )
}

// ---------------------------------------------------------------------
// Fig. 9.
// ---------------------------------------------------------------------

fn fig09_cells() -> [(&'static str, RegulationMode, bool); 3] {
    [
        ("isolated", RegulationMode::None, false),
        ("contended, no QoS", RegulationMode::None, true),
        ("contended, PABST 20:1", RegulationMode::Pabst, true),
    ]
}

fn fig09_grid(quick: bool) -> Vec<Params> {
    let epochs = if quick { 20 } else { 40 };
    fig09_cells()
        .iter()
        .enumerate()
        .map(|(i, (label, _, _))| Params::new("fig09", *label, i, epochs))
        .collect()
}

fn fig09_run_cell(p: &Params, mut ctx: RunCtx) -> ExperimentResult {
    let (_, mode, aggressor) = fig09_cells()[p.index];
    let r = fig9_run(mode, aggressor, p.epochs, p.seed, &mut ctx);
    ctx.finish(
        p,
        vec![
            ("mean", r.mean),
            ("p50", r.p50 as f64),
            ("p95", r.p95 as f64),
            ("p99", r.p99 as f64),
            ("count", r.count as f64),
        ],
        Vec::new(),
    )
}

fn fig09_render(results: &[ExperimentResult]) -> String {
    let mut t = Table::new(vec!["configuration", "txns", "mean (cyc)", "p50", "p95", "p99"]);
    for (r, (label, _, _)) in results.iter().zip(fig09_cells().iter()) {
        t.row(vec![
            (*label).into(),
            format!("{}", r.metric("count")),
            format!("{:.0}", r.metric("mean")),
            format!("{}", r.metric("p50")),
            format!("{}", r.metric("p95")),
            format!("{}", r.metric("p99")),
        ]);
    }
    format!(
        "Figure 9 — memcached service times under a bandwidth aggressor\n\
         (paper: PABST nearly restores both the mean and the tail)\n\n{}",
        t.render()
    )
}

// ---------------------------------------------------------------------
// Figs. 10, 11, 12: SPEC workload matrices. One cell = one workload row
// (its mode runs share the isolated-IPC baseline, so they stay together).
// ---------------------------------------------------------------------

const SPEC_MODES: [RegulationMode; 4] = [
    RegulationMode::None,
    RegulationMode::SourceOnly,
    RegulationMode::TargetOnly,
    RegulationMode::Pabst,
];
const SLOWDOWN_KEYS: [&str; 4] =
    ["slowdown_none", "slowdown_source", "slowdown_target", "slowdown_pabst"];
const EFF_KEYS: [&str; 4] = ["eff_none", "eff_source", "eff_target", "eff_pabst"];

fn spec_grid(experiment: &'static str, epochs: usize) -> Vec<Params> {
    all_spec()
        .iter()
        .enumerate()
        .map(|(i, w)| Params::new(experiment, w.name(), i, epochs))
        .collect()
}

fn fig10_grid(quick: bool) -> Vec<Params> {
    spec_grid("fig10", if quick { 6 } else { MEASURE_EPOCHS })
}

fn fig12_grid(quick: bool) -> Vec<Params> {
    spec_grid("fig12", if quick { 8 } else { MEASURE_EPOCHS })
}

/// Shared Fig. 10 / Fig. 12 cell: the isolated baseline plus all four
/// regulation modes for one SPEC workload.
fn spec_matrix_run(p: &Params, mut ctx: RunCtx) -> ExperimentResult {
    let w = all_spec()[p.index];
    let iso = spec_isolated_ipc(w, p.epochs, p.seed, &mut ctx);
    let mut metrics = vec![("iso_ipc", iso)];
    for (i, mode) in SPEC_MODES.iter().enumerate() {
        let c = fig10_cell(w, *mode, iso, p.epochs, p.seed, &mut ctx);
        metrics.push((SLOWDOWN_KEYS[i], c.slowdown));
        metrics.push((EFF_KEYS[i], c.efficiency));
    }
    eprintln!("  done {}", w.name());
    ctx.finish(p, metrics, Vec::new())
}

fn efficiency_table(results: &[ExperimentResult]) -> Table {
    let mut t = Table::new(vec![
        "workload",
        "no-QoS",
        "governor-only",
        "arbiter-only",
        "pabst",
        "latency-sensitive",
    ]);
    for (r, w) in results.iter().zip(all_spec()) {
        let mut cells = vec![w.name().to_string()];
        cells.extend(EFF_KEYS.iter().map(|k| format!("{:.2}", r.metric(k))));
        cells.push(if w.latency_sensitive() { "yes".into() } else { "no".into() });
        t.row(cells);
    }
    t
}

fn fig10_render(results: &[ExperimentResult]) -> String {
    let mut slow = Table::new(vec!["workload", "no-QoS", "source-only", "target-only", "pabst"]);
    let mut sums = [0.0f64; 4];
    for (r, w) in results.iter().zip(all_spec()) {
        let mut cells = vec![w.name().to_string()];
        for (i, k) in SLOWDOWN_KEYS.iter().enumerate() {
            let v = r.metric(k);
            sums[i] += v;
            cells.push(format!("{v:.2}x"));
        }
        slow.row(cells);
    }
    let n = all_spec().len() as f64;
    slow.row(vec![
        "mean".into(),
        format!("{:.2}x", sums[0] / n),
        format!("{:.2}x", sums[1] / n),
        format!("{:.2}x", sums[2] / n),
        format!("{:.2}x", sums[3] / n),
    ]);
    format!(
        "Figure 10 — weighted slowdown vs isolated run (32:1 shares,\n\
         16 SPEC cores + 16 streaming cores)\n\
         (paper: avg 2.0x without QoS -> 1.2x with PABST; combination always best)\n\n{}\n\
         Figure 12 — memory efficiency (data-bus utilization) of the same runs\n\
         (paper: QoS lowers efficiency; drop largest for latency-sensitive workloads)\n\n{}",
        slow.render(),
        efficiency_table(results).render()
    )
}

fn fig12_render(results: &[ExperimentResult]) -> String {
    format!(
        "Figure 12 — memory efficiency (data-bus utilization), SPEC +\n\
         streaming aggressor at 32:1\n\
         (paper: QoS lowers efficiency; the drop is largest for\n \
         latency-sensitive workloads)\n\n{}",
        efficiency_table(results).render()
    )
}

fn fig11_grid(quick: bool) -> Vec<Params> {
    spec_grid("fig11", if quick { 8 } else { MEASURE_EPOCHS })
}

fn fig11_run(p: &Params, mut ctx: RunCtx) -> ExperimentResult {
    let w = all_spec()[p.index];
    let c = fig11_cell(w, p.epochs, p.seed, &mut ctx);
    eprintln!("  done {}", w.name());
    ctx.finish(p, vec![("static_ipc", c.static_ipc), ("pabst_ipc", c.pabst_ipc)], Vec::new())
}

fn fig11_render(results: &[ExperimentResult]) -> String {
    let mut t = Table::new(vec!["workload", "static IPC", "PABST IPC", "improvement"]);
    for (r, w) in results.iter().zip(all_spec()) {
        let (s, p) = (r.metric("static_ipc"), r.metric("pabst_ipc"));
        t.row(vec![
            w.name().into(),
            format!("{s:.3}"),
            format!("{p:.3}"),
            format!("{:+.0}%", (p / s - 1.0) * 100.0),
        ]);
    }
    format!(
        "Figure 11 — four consolidated 25%-share classes vs a static\n\
         quarter-bandwidth allocation\n\
         (paper: 15-90% improvement thanks to work conservation)\n\n{}",
        t.render()
    )
}

// ---------------------------------------------------------------------
// Ablations.
// ---------------------------------------------------------------------

/// One typed ablation cell (five sub-studies flattened into one grid).
#[derive(Debug, Clone, Copy)]
enum AblateCell {
    Writeback(&'static str, WbAccounting),
    Burst(u64),
    Slack(u64),
    Inertia(u32),
    Skew(&'static str, bool),
}

fn ablate_cells() -> Vec<AblateCell> {
    let mut cells = Vec::new();
    for (name, p) in [
        ("charge-demand (paper)", WbAccounting::ChargeDemand),
        ("charge-owner", WbAccounting::ChargeOwner),
        ("charge-none", WbAccounting::ChargeNone),
    ] {
        cells.push(AblateCell::Writeback(name, p));
    }
    for burst in [1u64, 4, 16, 64, 256] {
        cells.push(AblateCell::Burst(burst));
    }
    for slack in [8u64, 32, 128, 512, 4096] {
        cells.push(AblateCell::Slack(slack));
    }
    for inertia in [1u32, 2, 3, 5, 8] {
        cells.push(AblateCell::Inertia(inertia));
    }
    for (name, per_mc) in
        [("global wired-OR SAT (paper default)", false), ("per-MC SAT + governor", true)]
    {
        cells.push(AblateCell::Skew(name, per_mc));
    }
    cells
}

fn ablate_grid(quick: bool) -> Vec<Params> {
    let epochs = if quick { 16 } else { 40 };
    ablate_cells()
        .iter()
        .enumerate()
        .map(|(i, cell)| {
            let config = match cell {
                AblateCell::Writeback(name, _) => format!("writeback/{name}"),
                AblateCell::Burst(b) => format!("burst/{b}"),
                AblateCell::Slack(s) => format!("slack/{s}"),
                AblateCell::Inertia(n) => format!("inertia/{n}"),
                AblateCell::Skew(name, _) => format!("skew/{name}"),
            };
            Params::new("ablate", config, i, epochs)
        })
        .collect()
}

fn ablate_run(p: &Params, mut ctx: RunCtx) -> ExperimentResult {
    let metrics = match ablate_cells()[p.index] {
        AblateCell::Writeback(_, policy) => {
            let (s0, s1) = ablate_writeback(policy, p.epochs, p.seed, &mut ctx);
            vec![("share0", s0), ("share1", s1)]
        }
        AblateCell::Burst(burst) => {
            vec![("error_pct", ablate_burst(burst, p.epochs, p.seed, &mut ctx))]
        }
        AblateCell::Slack(slack) => {
            vec![("error_pct", ablate_slack(slack, p.epochs, p.seed, &mut ctx))]
        }
        AblateCell::Inertia(inertia) => {
            let (err, jitter) = ablate_inertia(inertia, p.epochs, p.seed, &mut ctx);
            vec![("error_pct", err), ("jitter", jitter)]
        }
        AblateCell::Skew(_, per_mc) => {
            vec![("bpc", skewed_traffic_utilization(per_mc, p.epochs, p.seed, &mut ctx))]
        }
    };
    ctx.finish(p, metrics, Vec::new())
}

fn ablate_render(results: &[ExperimentResult]) -> String {
    let cells = ablate_cells();
    let mut out = String::new();

    out.push_str("Ablation 1 — writeback accounting (write streams, 7:3)\n\n");
    let mut t = Table::new(vec!["policy", "class0 share", "class1 share"]);
    for (r, cell) in results.iter().zip(&cells) {
        if let AblateCell::Writeback(name, _) = cell {
            t.row(vec![
                (*name).into(),
                format!("{:.3}", r.metric("share0")),
                format!("{:.3}", r.metric("share1")),
            ]);
        }
    }
    out.push_str(&t.render());

    out.push_str("\nAblation 2 — pacer burst window (read streams, 7:3)\n\n");
    let mut t = Table::new(vec!["burst (requests)", "alloc error %"]);
    for (r, cell) in results.iter().zip(&cells) {
        if let AblateCell::Burst(burst) = cell {
            t.row(vec![burst.to_string(), format!("{:.1}", r.metric("error_pct"))]);
        }
    }
    out.push_str(&t.render());

    out.push_str("\nAblation 3 — arbiter slack (chaser+stream, 3:1)\n\n");
    let mut t = Table::new(vec!["slack (vticks)", "alloc error %"]);
    for (r, cell) in results.iter().zip(&cells) {
        if let AblateCell::Slack(slack) = cell {
            t.row(vec![slack.to_string(), format!("{:.1}", r.metric("error_pct"))]);
        }
    }
    out.push_str(&t.render());

    out.push_str("\nAblation 4 — governor inertia (read streams, 7:3)\n\n");
    let mut t = Table::new(vec!["inertia (epochs)", "alloc error %", "mean |dM|/M"]);
    for (r, cell) in results.iter().zip(&cells) {
        if let AblateCell::Inertia(inertia) = cell {
            t.row(vec![
                inertia.to_string(),
                format!("{:.1}", r.metric("error_pct")),
                format!("{:.4}", r.metric("jitter")),
            ]);
        }
    }
    out.push_str(&t.render());

    out.push_str("\nAblation 5 — per-MC governors under skewed traffic (SIII-C1)\n\n");
    let mut t = Table::new(vec!["regulation granularity", "total GB/s"]);
    for (r, cell) in results.iter().zip(&cells) {
        if let AblateCell::Skew(name, _) = cell {
            t.row(vec![(*name).into(), gbps(r.metric("bpc"))]);
        }
    }
    out.push_str(&t.render());
    out
}

// ---------------------------------------------------------------------
// Calibration sweep.
// ---------------------------------------------------------------------

const CALIBRATE_GEOMETRIES: [(usize, usize, u64); 3] = [
    (32, 16, 12), // default data buffer
    (64, 4, 12),  // deeper front-end, shallow blind FIFO
    (64, 4, 6),   // + shallower data buffer
];
const CALIBRATE_MIXES: [(Fig1Mix, &str, RegulationMode, &str); 4] = [
    (Fig1Mix::StreamStream, "stream", RegulationMode::SourceOnly, "src"),
    (Fig1Mix::StreamStream, "stream", RegulationMode::TargetOnly, "tgt"),
    (Fig1Mix::ChaserStream, "chaser", RegulationMode::SourceOnly, "src"),
    (Fig1Mix::ChaserStream, "chaser", RegulationMode::TargetOnly, "tgt"),
];

fn calibrate_grid(quick: bool) -> Vec<Params> {
    let epochs = if quick { 8 } else { 16 };
    let mut cells = Vec::new();
    for (read_q, ingress, horizon) in CALIBRATE_GEOMETRIES {
        for (_, mix_name, _, mode_name) in CALIBRATE_MIXES {
            let i = cells.len();
            cells.push(Params::new(
                "calibrate",
                format!("rq{read_q} in{ingress} hz{horizon} {mix_name}/{mode_name}"),
                i,
                epochs,
            ));
        }
    }
    cells
}

fn calibrate_run(p: &Params, mut ctx: RunCtx) -> ExperimentResult {
    let (read_q, ingress, horizon) = CALIBRATE_GEOMETRIES[p.index / CALIBRATE_MIXES.len()];
    let (mix, _, mode, _) = CALIBRATE_MIXES[p.index % CALIBRATE_MIXES.len()];
    let mut cfg = SystemConfig::baseline_32core();
    cfg.dram.read_q_cap = read_q;
    cfg.dram.ingress_cap = ingress;
    cfg.dram.data_buf_cap = horizon as usize;
    let err = fig1_cell_with(cfg, mix, mode, p.epochs, p.seed, &mut ctx).error_pct;
    eprintln!("  done {}", p.config);
    ctx.finish(p, vec![("error_pct", err)], Vec::new())
}

fn calibrate_render(results: &[ExperimentResult]) -> String {
    let mut t = Table::new(vec![
        "read_q",
        "ingress",
        "data_buf",
        "stream src%",
        "stream tgt%",
        "chaser src%",
        "chaser tgt%",
    ]);
    for (g, (read_q, ingress, horizon)) in CALIBRATE_GEOMETRIES.iter().enumerate() {
        let cell =
            |k: usize| format!("{:.0}", results[g * CALIBRATE_MIXES.len() + k].metric("error_pct"));
        t.row(vec![
            read_q.to_string(),
            ingress.to_string(),
            horizon.to_string(),
            cell(0),
            cell(1),
            cell(2),
            cell(3),
        ]);
    }
    format!(
        "Calibration — Fig. 1 asymmetry vs controller geometry\n\
         (want: stream src low / tgt high; chaser src high / tgt low)\n\n{}",
        t.render()
    )
}

// ---------------------------------------------------------------------
// Resilience: fault rate vs fairness/throughput (degradation curve).
// Registered but not in ALL_FIGURES — fault sweeps are diagnostics, not
// paper figures, and `all_figures` output must stay byte-stable.
// ---------------------------------------------------------------------

/// One typed resilience cell: which fault kind at which per-epoch rate.
#[derive(Debug, Clone, Copy)]
enum ResilienceCell {
    /// SAT broadcast dropped with this probability (ppm per epoch).
    SatDrop(u64),
    /// SAT broadcast inverted with this probability.
    SatCorrupt(u64),
    /// Per-tile epoch-sync skew (missed reprogram) with this probability.
    EpochSkew(u64),
    /// Per-tile pacer credit leak with this probability.
    CreditLeak(u64),
    /// A finite whole-epoch MC service-stall window (epochs 6..=8).
    McStallWindow,
}

fn resilience_cells() -> Vec<ResilienceCell> {
    let mut cells = Vec::new();
    // The headline curve: SAT-drop rate 0 → 100%. Rate 0 doubles as the
    // live proof that an inert plan reproduces the healthy run; rate
    // 100% starves the governor forever, driving the stale-SAT fail-safe
    // all the way to its conservative floor.
    for ppm in [0u64, 10_000, 50_000, 200_000, 500_000, 1_000_000] {
        cells.push(ResilienceCell::SatDrop(ppm));
    }
    for ppm in [50_000u64, 200_000] {
        cells.push(ResilienceCell::SatCorrupt(ppm));
    }
    cells.push(ResilienceCell::EpochSkew(200_000));
    cells.push(ResilienceCell::CreditLeak(200_000));
    cells.push(ResilienceCell::McStallWindow);
    cells
}

fn resilience_label(cell: ResilienceCell) -> String {
    match cell {
        ResilienceCell::SatDrop(ppm) => format!("sat-drop/{ppm}ppm"),
        ResilienceCell::SatCorrupt(ppm) => format!("sat-corrupt/{ppm}ppm"),
        ResilienceCell::EpochSkew(ppm) => format!("epoch-skew/{ppm}ppm"),
        ResilienceCell::CreditLeak(ppm) => format!("credit-leak/{ppm}ppm"),
        ResilienceCell::McStallWindow => "mc-stall/epochs6-8".to_string(),
    }
}

/// Builds the cell's fault plan. Tile-targeted kinds get one spec per
/// core of the scaled 8-core machine; SAT kinds target the single global
/// monitor (target 0); the stall window targets the single controller.
fn resilience_plan(cell: ResilienceCell, seed: u64) -> FaultPlan {
    let spec = |kind, target, prob_ppm, magnitude| FaultSpec {
        kind,
        target,
        from_epoch: 0,
        until_epoch: u64::MAX,
        prob_ppm,
        magnitude,
        seed: seed ^ 0x5eed_0000,
    };
    let mut plan = FaultPlan::new();
    match cell {
        ResilienceCell::SatDrop(ppm) => plan.push(spec(FaultKind::SatDrop, 0, ppm, 0)),
        ResilienceCell::SatCorrupt(ppm) => plan.push(spec(FaultKind::SatCorrupt, 0, ppm, 0)),
        ResilienceCell::EpochSkew(ppm) => {
            for tile in 0..8 {
                plan.push(spec(FaultKind::EpochSkew, tile, ppm, 0));
            }
        }
        ResilienceCell::CreditLeak(ppm) => {
            for tile in 0..8 {
                plan.push(spec(FaultKind::CreditLeak, tile, ppm, 5_000));
            }
        }
        ResilienceCell::McStallWindow => plan.push(FaultSpec {
            kind: FaultKind::McStall,
            target: 0,
            from_epoch: 6,
            until_epoch: 8,
            prob_ppm: pabst_simkit::fault::PPM_SCALE,
            magnitude: 0,
            seed,
        }),
    }
    plan
}

/// The full labelled resilience curve — `(label, plan)` per cell, in
/// grid order. Public so the chaos-envelope integration test can pin
/// every zoo mechanism against the exact plans the resilience sweep
/// runs.
pub fn resilience_curve(seed: u64) -> Vec<(String, FaultPlan)> {
    resilience_cells()
        .iter()
        .map(|&cell| (resilience_label(cell), resilience_plan(cell, seed)))
        .collect()
}

fn resilience_grid(quick: bool) -> Vec<Params> {
    let epochs = if quick { 10 } else { 30 };
    let mech = SystemConfig::scaled_8core().mechanism_hash();
    resilience_cells()
        .iter()
        .enumerate()
        .map(|(i, &cell)| {
            // Seed 0 matches `Params::new`; `resilience_run` derives the
            // plan from the same `(cell, p.seed)` pair.
            Params::new("resilience", resilience_label(cell), i, epochs)
                .with_provenance(mech, resilience_plan(cell, 0).digest())
        })
        .collect()
}

fn resilience_run(p: &Params, mut ctx: RunCtx) -> ExperimentResult {
    let plan = resilience_plan(resilience_cells()[p.index], p.seed);
    let r = resilience_cell(plan, p.epochs, p.seed, &mut ctx);
    ctx.finish(
        p,
        vec![
            ("error_pct", r.error_pct),
            ("bpc", r.total_bpc),
            ("faults", r.faults as f64),
            ("degraded", r.degraded_epochs as f64),
        ],
        Vec::new(),
    )
}

fn resilience_render(results: &[ExperimentResult]) -> String {
    let mut t = Table::new(vec![
        "fault",
        "alloc error %",
        "total GB/s",
        "faults injected",
        "degraded epochs",
    ]);
    for r in results {
        t.row(vec![
            r.params.config.clone(),
            format!("{:.1}", r.metric("error_pct")),
            gbps(r.metric("bpc")),
            format!("{}", r.metric("faults")),
            format!("{}", r.metric("degraded")),
        ]);
    }
    format!(
        "Resilience — deterministic fault injection vs fairness and throughput\n\
         (sat-drop row 0ppm is the healthy reference; the governor's stale-SAT\n \
         fail-safe and the finite mc-stall window both recover without deadlock)\n\n{}",
        t.render()
    )
}

// ---------------------------------------------------------------------
// Scale: topology study. Registered but not in ALL_FIGURES — the paper
// stops at 32 tiles, and `all_figures` output must stay byte-stable.
// ---------------------------------------------------------------------

/// A labelled machine constructor in the scale ladder.
type ScaleCell = (&'static str, fn() -> SystemConfig);

/// The scale ladder: the paper's machine, then 2× and 8× the tiles with
/// the distance-modelled mesh network.
fn scale_cells() -> [ScaleCell; 3] {
    [
        ("baseline 32t/4mc uniform", SystemConfig::baseline_32core),
        ("mesh 64t/8mc", SystemConfig::mesh_64),
        ("mesh 256t/16mc", SystemConfig::mesh_256x16),
    ]
}

fn scale_grid(quick: bool) -> Vec<Params> {
    let epochs = if quick { 8 } else { 20 };
    scale_cells()
        .iter()
        .enumerate()
        .map(|(i, (label, _))| Params::new("scale", *label, i, epochs))
        .collect()
}

fn scale_run(p: &Params, mut ctx: RunCtx) -> ExperimentResult {
    let (_, cfg) = scale_cells()[p.index];
    let r = scale_cell(cfg(), p.epochs, p.seed, &mut ctx);
    eprintln!("  done {}", p.config);
    ctx.finish(
        p,
        vec![
            ("error_pct", r.error_pct),
            ("bpc", r.total_bpc),
            ("sat_duty", r.sat_duty),
            ("jitter", r.jitter),
        ],
        Vec::new(),
    )
}

fn scale_render(results: &[ExperimentResult]) -> String {
    let mut t =
        Table::new(vec!["machine", "alloc error %", "total GB/s", "SAT duty", "mean |dM|/M"]);
    for r in results {
        t.row(vec![
            r.params.config.clone(),
            format!("{:.1}", r.metric("error_pct")),
            gbps(r.metric("bpc")),
            format!("{:.2}", r.metric("sat_duty")),
            format!("{:.3}", r.metric("jitter")),
        ]);
    }
    format!(
        "Scale — one wired-OR SAT + global governor vs machine size (3:1 streams)\n\
         (expected: allocation holds at every size, but the single-M loop's\n \
         step size grows with the machine — watch the 256-tile jitter column\n \
         for the governor hunting around its fixed point)\n\n{}",
        t.render()
    )
}

// ---------------------------------------------------------------------
// Mechanisms: the governor × arbiter zoo. Registered but not in
// ALL_FIGURES — mechanism comparisons are a design-space study, not a
// paper figure, and `all_figures` output must stay byte-stable.
// ---------------------------------------------------------------------

/// The mechanism pairs the sweep compares. The first entry is the
/// paper's default (SAT governor + EDF arbiter); the rest swap exactly
/// one side of the seam at a time so differences attribute cleanly.
/// Shared with [`crate::chaos`] (every campaign cell draws one pair)
/// and the chaos-envelope integration test.
pub const MECHANISM_COMBOS: [(GovernorKind, ArbiterMode); 4] = [
    (GovernorKind::Sat, ArbiterMode::Edf),
    (GovernorKind::LmsAr, ArbiterMode::Edf),
    (GovernorKind::Sat, ArbiterMode::PerBank),
    (GovernorKind::Sat, ArbiterMode::Dpq),
];

/// The workload mixes each pair runs under: (label, chaser_mix).
const MECHANISM_MIXES: [(&str, bool); 2] =
    [("memcached+streams", false), ("memcached+chasers", true)];

fn mechanisms_cells() -> Vec<(GovernorKind, ArbiterMode, &'static str, bool)> {
    let mut cells = Vec::new();
    for (mix, chaser) in MECHANISM_MIXES {
        for (g, a) in MECHANISM_COMBOS {
            cells.push((g, a, mix, chaser));
        }
    }
    cells
}

fn mechanisms_grid(quick: bool) -> Vec<Params> {
    let epochs = if quick { 10 } else { 30 };
    mechanisms_cells()
        .iter()
        .enumerate()
        .map(|(i, (g, a, mix, _))| {
            Params::new("mechanisms", format!("{mix}/{}/{}", g.label(), a.label()), i, epochs)
        })
        .collect()
}

fn mechanisms_run(p: &Params, mut ctx: RunCtx) -> ExperimentResult {
    let (g, a, _, chaser) = mechanisms_cells()[p.index];
    let r = mechanisms_cell(g, a, chaser, p.epochs, p.seed, &mut ctx);
    ctx.finish(
        p,
        vec![
            ("error_pct", r.error_pct),
            ("bpc", r.total_bpc),
            ("p95", r.p95 as f64),
            ("p99", r.p99 as f64),
        ],
        Vec::new(),
    )
}

fn mechanisms_render(results: &[ExperimentResult]) -> String {
    let cells = mechanisms_cells();
    let mut t = Table::new(vec![
        "mix",
        "governor",
        "arbiter",
        "alloc error %",
        "total GB/s",
        "svc p95",
        "svc p99",
    ]);
    for (r, (g, a, mix, _)) in results.iter().zip(&cells) {
        t.row(vec![
            (*mix).into(),
            g.label().into(),
            a.label().into(),
            format!("{:.1}", r.metric("error_pct")),
            gbps(r.metric("bpc")),
            format!("{}", r.metric("p95")),
            format!("{}", r.metric("p99")),
        ]);
    }
    format!(
        "Mechanisms — competing governor and arbiter mechanisms behind the\n\
         Governor / TargetArbiter seams (sat/edf is the paper's pair; each\n \
         other row swaps one side of one seam)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_name_resolves_and_grids_are_consistent() {
        for exp in &EXPERIMENTS {
            assert!(find(exp.name).is_some(), "{} must be findable", exp.name);
            for quick in [false, true] {
                let grid = (exp.grid)(quick);
                for (i, p) in grid.iter().enumerate() {
                    assert_eq!(p.index, i, "{}: index matches grid position", exp.name);
                    assert_eq!(p.experiment, exp.name, "{}: cell tagged with owner", exp.name);
                }
                let mut names: Vec<&str> = grid.iter().map(|p| p.config.as_str()).collect();
                names.sort_unstable();
                names.dedup();
                assert_eq!(names.len(), grid.len(), "{}: config names unique", exp.name);
            }
        }
    }

    #[test]
    fn all_figures_names_resolve() {
        for name in ALL_FIGURES {
            assert!(find(name).is_some(), "{name} must be registered");
        }
        assert!(find("fig02").is_none());
    }

    #[test]
    fn table03_renders_without_running_anything() {
        let out = table03_render(&[]);
        assert!(out.starts_with("Table III — simulated system configuration\n\n"));
        assert!(out.contains("pacer burst"));
    }
}
