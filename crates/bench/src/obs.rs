//! Command-line observability hooks shared by every figure/ablation
//! binary: `--trace <path>` streams one JSONL [`EpochRecord`] per epoch
//! from every system the binary runs, and `--report-json <path>` appends
//! the end-of-run [`SystemReport`] as JSON.
//!
//! Both flags accept `--flag value` and `--flag=value`. A binary may run
//! several systems (ablation sweeps, baselines); the first open of a path
//! truncates it and later opens append, so one invocation produces one
//! coherent file.
//!
//! [`EpochRecord`]: pabst_simkit::trace::EpochRecord
//! [`SystemReport`]: pabst_soc::report::SystemReport

use std::collections::BTreeSet;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write as _};
use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};

use pabst_simkit::trace::JsonlSink;
use pabst_soc::report::SystemReport;
use pabst_soc::system::System;

/// Returns the value of `--<flag> value` or `--<flag>=value` from the
/// process arguments, if present.
pub fn arg_value(flag: &str) -> Option<String> {
    let long = format!("--{flag}");
    let prefix = format!("--{flag}=");
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix(&prefix) {
            return Some(v.to_string());
        }
        if *a == long {
            return args.get(i + 1).cloned();
        }
    }
    None
}

/// Opens `path` for this invocation: truncating on the first open,
/// appending afterwards, so multi-system binaries produce one file.
fn open_for(path: &str) -> Option<File> {
    static OPENED: OnceLock<Mutex<BTreeSet<PathBuf>>> = OnceLock::new();
    let canonical = PathBuf::from(path);
    let mut seen = OPENED.get_or_init(|| Mutex::new(BTreeSet::new())).lock().ok()?;
    let first = seen.insert(canonical);
    let res = if first { File::create(path) } else { OpenOptions::new().append(true).open(path) };
    match res {
        Ok(f) => Some(f),
        Err(e) => {
            eprintln!("warning: cannot open {path}: {e}");
            None
        }
    }
}

/// Attaches a JSONL trace sink to `sys` when `--trace <path>` was given.
/// Call once per system, right after building it.
pub fn attach(sys: &mut System) {
    if let Some(path) = arg_value("trace") {
        if let Some(f) = open_for(&path) {
            sys.add_trace_sink(Box::new(JsonlSink::new(BufWriter::new(f))));
        }
    }
}

/// Appends the system's end-of-run report as one JSON line when
/// `--report-json <path>` was given. Call once per system, after its run.
pub fn report(sys: &System) {
    if let Some(path) = arg_value("report-json") {
        if let Some(mut f) = open_for(&path) {
            let json = SystemReport::collect(sys).to_json();
            if let Err(e) = writeln!(f, "{json}") {
                eprintln!("warning: cannot write {path}: {e}");
            }
        }
    }
}
