//! The one command-line parser shared by every figure/ablation binary.
//!
//! Every `src/bin/` runner accepts the same flags, parsed once into
//! [`CliArgs`] instead of being re-scanned ad hoc per binary:
//!
//! * `--quick` — shortened run (fewer epochs, looser numbers) for CI and
//!   the micro-benchmark wrappers;
//! * `--jobs <n>` — worker threads for the sweep harness (`0` = one per
//!   available core); the merged output is byte-identical at any value;
//! * `--filter <experiment>` — run only the named experiment of a
//!   multi-experiment driver (`all_figures`);
//! * `--trace <path>` — merged JSONL epoch records from every system the
//!   invocation runs, in submission order;
//! * `--report-json <path>` — merged end-of-run summaries, one JSON line
//!   per system, tagged with experiment/config/seed;
//! * `--out <path>` — output override for binaries that write an
//!   artifact (`sim_throughput`);
//! * `--keep-going` — when a grid cell panics, keep running the remaining
//!   experiments instead of stopping after the first one with failures
//!   (either way the cell's failure is recorded and the exit code is
//!   non-zero);
//! * `--no-skip` — force naive per-cycle stepping for every system the
//!   invocation builds, exactly as the `PABST_NO_SKIP` environment
//!   variable does (the flag form lets CI A/B jobs flip the switch
//!   without touching the environment). Output is byte-identical either
//!   way; that equivalence is what the A/B jobs check.
//!
//! All value flags accept both `--flag value` and `--flag=value`.
//! Unknown flags are an error (exit 2), not a silent ignore — a typoed
//! `--trce` must not quietly drop the trace an experiment depended on.

/// Parsed command-line flags common to every bench binary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CliArgs {
    /// Shortened run for CI / smoke testing.
    pub quick: bool,
    /// Requested sweep worker count; `None` (flag absent) sizes from
    /// [`std::thread::available_parallelism`], as does an explicit `0`.
    pub jobs: Option<usize>,
    /// Only run the experiment with this name.
    pub filter: Option<String>,
    /// Write merged JSONL epoch records here.
    pub trace: Option<String>,
    /// Write merged end-of-run report JSON lines here.
    pub report_json: Option<String>,
    /// Artifact output path override.
    pub out: Option<String>,
    /// Keep running later experiments after one records cell failures
    /// (default is fail-fast: stop after the first failing experiment).
    pub keep_going: bool,
    /// Force naive per-cycle stepping (the `PABST_NO_SKIP` baseline) for
    /// every system this invocation builds.
    pub no_skip: bool,
}

impl CliArgs {
    /// Parses `std::env::args`, printing the problem and usage to stderr
    /// and exiting with status 2 on any unknown or malformed flag.
    pub fn parse() -> Self {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        match Self::parse_from(&argv) {
            Ok(args) => args,
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!("{}", usage());
                std::process::exit(2);
            }
        }
    }

    /// Parses an explicit argument list (no leading program name).
    ///
    /// # Errors
    ///
    /// Returns a description of the first unknown flag, missing value, or
    /// non-numeric `--jobs` argument.
    pub fn parse_from(argv: &[String]) -> Result<Self, String> {
        let mut args = Self::default();
        let mut it = argv.iter();
        while let Some(a) = it.next() {
            let (flag, inline) = match a.split_once('=') {
                Some((f, v)) => (f, Some(v.to_string())),
                None => (a.as_str(), None),
            };
            let value = |it: &mut std::slice::Iter<'_, String>| -> Result<String, String> {
                match inline.clone() {
                    Some(v) => Ok(v),
                    None => it.next().cloned().ok_or_else(|| format!("{flag} needs a value")),
                }
            };
            match flag {
                "--quick" => args.quick = true,
                "--jobs" => {
                    let v = value(&mut it)?;
                    args.jobs =
                        Some(v.parse().map_err(|_| format!("--jobs needs a number, got `{v}`"))?);
                }
                "--filter" => args.filter = Some(value(&mut it)?),
                "--trace" => args.trace = Some(value(&mut it)?),
                "--report-json" => args.report_json = Some(value(&mut it)?),
                "--out" => args.out = Some(value(&mut it)?),
                "--keep-going" => args.keep_going = true,
                "--no-skip" => args.no_skip = true,
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        Ok(args)
    }
}

/// The flag summary printed on a parse error.
pub fn usage() -> String {
    "usage: <bin> [--quick] [--jobs <n>] [--filter <experiment>] \
     [--trace <path>] [--report-json <path>] [--out <path>] [--keep-going] [--no-skip]"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CliArgs, String> {
        let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        CliArgs::parse_from(&argv)
    }

    #[test]
    fn defaults_are_empty() {
        let args = parse(&[]).unwrap();
        assert_eq!(args, CliArgs::default());
        assert!(!args.quick);
        assert_eq!(args.jobs, None);
    }

    #[test]
    fn parses_both_value_styles() {
        let a = parse(&["--quick", "--jobs", "4", "--trace=t.jsonl", "--filter", "fig05"]).unwrap();
        assert!(a.quick);
        assert_eq!(a.jobs, Some(4));
        assert_eq!(a.trace.as_deref(), Some("t.jsonl"));
        assert_eq!(a.filter.as_deref(), Some("fig05"));
        let b = parse(&["--report-json=r.json", "--out", "bench.json"]).unwrap();
        assert_eq!(b.report_json.as_deref(), Some("r.json"));
        assert_eq!(b.out.as_deref(), Some("bench.json"));
    }

    #[test]
    fn keep_going_defaults_off_and_parses() {
        assert!(!parse(&[]).unwrap().keep_going);
        assert!(parse(&["--keep-going"]).unwrap().keep_going);
    }

    #[test]
    fn no_skip_defaults_off_and_parses() {
        assert!(!parse(&[]).unwrap().no_skip);
        assert!(parse(&["--no-skip"]).unwrap().no_skip);
    }

    #[test]
    fn unknown_flags_are_errors() {
        let err = parse(&["--trce", "t.jsonl"]).unwrap_err();
        assert!(err.contains("--trce"), "{err}");
        assert!(parse(&["positional"]).is_err());
    }

    #[test]
    fn missing_and_malformed_values_are_errors() {
        assert!(parse(&["--jobs"]).unwrap_err().contains("needs a value"));
        assert!(parse(&["--jobs", "many"]).unwrap_err().contains("needs a number"));
        assert!(parse(&["--trace"]).is_err());
    }
}
