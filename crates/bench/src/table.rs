//! Minimal aligned-text table rendering for experiment reports.

/// A simple left-aligned text table.
///
/// # Examples
///
/// ```
/// use pabst_bench::table::Table;
///
/// let mut t = Table::new(vec!["workload", "slowdown"]);
/// t.row(vec!["mcf".into(), "2.10x".into()]);
/// let s = t.render();
/// assert!(s.contains("mcf"));
/// assert!(s.lines().count() >= 3);
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new(headers: Vec<&str>) -> Self {
        assert!(!headers.is_empty(), "a table needs at least one column");
        Self { headers: headers.into_iter().map(String::from).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns and a separator rule.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
            }
            line.trim_end().to_string()
        };
        let mut out = fmt_row(&self.headers);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a"));
        assert!(lines[2].starts_with("xxxxxx"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn rejects_empty_headers() {
        let _ = Table::new(vec![]);
    }
}
