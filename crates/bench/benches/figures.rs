//! Timing wrappers around scaled-down versions of the paper's figure
//! experiments, so regressions in end-to-end simulation cost are caught.
//!
//! These measure *simulator throughput*, not the figures themselves — run
//! the `fig*` binaries for the actual reproduction numbers.

use pabst_bench::harness::RunCtx;
use pabst_bench::scenarios::{fig1_cell, fig5_series, fig8_run, fig9_run, Fig1Mix};
use pabst_bench::timing::bench;
use pabst_soc::config::RegulationMode;

fn main() {
    bench("figures/fig1_stream_stream_pabst_4epochs", 1, || {
        let mut ctx = RunCtx::detached();
        std::hint::black_box(fig1_cell(
            Fig1Mix::StreamStream,
            RegulationMode::Pabst,
            4,
            0,
            &mut ctx,
        ));
    });
    bench("figures/fig5_series_4epochs", 1, || {
        let mut ctx = RunCtx::detached();
        std::hint::black_box(fig5_series(4, 0, &mut ctx));
    });
    bench("figures/fig8_run_4epochs", 1, || {
        let mut ctx = RunCtx::detached();
        std::hint::black_box(fig8_run(4, 0, &mut ctx));
    });
    bench("figures/fig9_memcached_quick", 1, || {
        let mut ctx = RunCtx::detached();
        std::hint::black_box(fig9_run(RegulationMode::Pabst, true, 4, 0, &mut ctx));
    });
}
