//! Criterion wrappers around scaled-down versions of the paper's figure
//! experiments, so regressions in end-to-end simulation cost are caught.
//!
//! These measure *simulator throughput*, not the figures themselves — run
//! the `fig*` binaries for the actual reproduction numbers.

use criterion::{criterion_group, criterion_main, Criterion};

use pabst_bench::scenarios::{fig1_cell, fig5_series, fig8_run, fig9_run, Fig1Mix};
use pabst_soc::config::RegulationMode;

fn bench_fig1(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig1_stream_stream_pabst_4epochs", |b| {
        b.iter(|| std::hint::black_box(fig1_cell(Fig1Mix::StreamStream, RegulationMode::Pabst, 4)));
    });
    g.bench_function("fig5_series_4epochs", |b| {
        b.iter(|| std::hint::black_box(fig5_series(4)));
    });
    g.bench_function("fig8_run_4epochs", |b| {
        b.iter(|| std::hint::black_box(fig8_run(4)));
    });
    g.bench_function("fig9_memcached_quick", |b| {
        b.iter(|| std::hint::black_box(fig9_run(RegulationMode::Pabst, true, 4)));
    });
    g.finish();
}

criterion_group!(figures, bench_fig1);
criterion_main!(figures);
