//! Criterion micro-benchmarks of the PABST components and substrates:
//! per-operation costs of the pacer, arbiter, governor, caches, MSHRs,
//! memory controller, and the full-system cycle step.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use pabst_cache::{CacheConfig, LineAddr, MshrTable, SetAssocCache};
use pabst_core::arbiter::VirtualClocks;
use pabst_core::governor::{MonitorConfig, SystemMonitor};
use pabst_core::pacer::Pacer;
use pabst_core::qos::{QosId, ShareTable};
use pabst_dram::{ArbiterMode, DramConfig, MemController, MemReq};
use pabst_soc::config::{RegulationMode, SystemConfig};
use pabst_soc::system::SystemBuilder;

fn bench_pacer(c: &mut Criterion) {
    let mut g = c.benchmark_group("pacer");
    g.throughput(Throughput::Elements(1));
    g.bench_function("try_issue", |b| {
        let mut p = Pacer::new(10);
        let mut now = 0u64;
        b.iter(|| {
            now += 1;
            std::hint::black_box(p.try_issue(now));
        });
    });
    g.finish();
}

fn bench_arbiter(c: &mut Criterion) {
    let shares = ShareTable::from_weights(&[3, 1]).unwrap();
    let mut g = c.benchmark_group("arbiter");
    g.throughput(Throughput::Elements(1));
    g.bench_function("stamp_and_pick", |b| {
        let mut vc = VirtualClocks::new(&shares, 128);
        let mut i = 0u8;
        b.iter(|| {
            i = (i + 1) % 2;
            let id = QosId::new(i);
            let d = vc.stamp(id);
            vc.on_picked(id, d);
        });
    });
    g.finish();
}

fn bench_governor(c: &mut Criterion) {
    let mut g = c.benchmark_group("governor");
    g.throughput(Throughput::Elements(1));
    g.bench_function("on_epoch", |b| {
        let mut mon = SystemMonitor::new(MonitorConfig::default());
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            std::hint::black_box(mon.on_epoch(i % 3 == 0));
        });
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.throughput(Throughput::Elements(1));
    g.bench_function("l2_probe_fill", |b| {
        let mut cache = SetAssocCache::new(CacheConfig::with_capacity(256 * 1024, 8));
        let q = QosId::new(0);
        let mut line = 0u64;
        b.iter(|| {
            line = line.wrapping_add(97);
            let l = LineAddr::new(line & 0xffff);
            if !cache.probe(l) {
                std::hint::black_box(cache.fill(l, q, false));
            }
        });
    });
    g.bench_function("mshr_alloc_complete", |b| {
        let mut m: MshrTable<u64> = MshrTable::new(16);
        let mut line = 0u64;
        b.iter(|| {
            line = line.wrapping_add(1);
            let l = LineAddr::new(line % 8);
            m.alloc(l, line);
            std::hint::black_box(m.complete(l));
        });
    });
    g.finish();
}

fn bench_dram(c: &mut Criterion) {
    let shares = ShareTable::from_weights(&[1]).unwrap();
    let mut g = c.benchmark_group("dram");
    g.throughput(Throughput::Elements(1));
    g.bench_function("mc_step_saturated", |b| {
        let mut mc = MemController::new(DramConfig::default(), ArbiterMode::Edf, &shares, 128);
        let mut now = 0u64;
        let mut line = 0u64;
        b.iter(|| {
            while mc.can_accept() {
                if mc
                    .push(MemReq {
                        line: LineAddr::new(line),
                        class: QosId::new(0),
                        is_write: false,
                        token: 0,
                    })
                    .is_err()
                {
                    break;
                }
                line += 1;
            }
            now += 1;
            std::hint::black_box(mc.step(now).len());
        });
    });
    g.finish();
}

fn bench_system(c: &mut Criterion) {
    use pabst_cpu::{Op, Workload};
    struct Mini {
        n: u64,
    }
    impl Workload for Mini {
        fn next_op(&mut self) -> Op {
            self.n += 1;
            if self.n % 2 == 0 {
                Op::Compute(2)
            } else {
                Op::Load {
                    addr: pabst_cache::Addr::new((self.n * 128) & 0xfff_ffff),
                    id: pabst_cpu::LoadId(self.n),
                    dep: None,
                }
            }
        }
        fn name(&self) -> &str {
            "mini-stream"
        }
    }

    let mut g = c.benchmark_group("system");
    g.throughput(Throughput::Elements(2_000));
    g.sample_size(10);
    g.bench_function("one_epoch_small_system", |b| {
        b.iter_batched(
            || {
                SystemBuilder::new(SystemConfig::small_test(), RegulationMode::Pabst)
                    .class(3, vec![Box::new(Mini { n: 0 }), Box::new(Mini { n: 1 << 32 })])
                    .class(
                        1,
                        vec![Box::new(Mini { n: 2 << 32 }), Box::new(Mini { n: 3 << 32 })],
                    )
                    .build()
                    .unwrap()
            },
            |mut sys| {
                sys.run_epochs(1);
                std::hint::black_box(sys.now());
            },
            BatchSize::LargeInput,
        );
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_pacer,
    bench_arbiter,
    bench_governor,
    bench_cache,
    bench_dram,
    bench_system
);
criterion_main!(benches);
