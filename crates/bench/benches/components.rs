//! Micro-benchmarks of the PABST components and substrates:
//! per-operation costs of the pacer, arbiter, governor, caches, MSHRs,
//! memory controller, and the full-system cycle step.
//!
//! Uses the in-repo `pabst_bench::timing` harness (harness = false).

use pabst_bench::timing::{bench, bench_batched};
use pabst_cache::{CacheConfig, LineAddr, MshrTable, SetAssocCache};
use pabst_core::arbiter::VirtualClocks;
use pabst_core::governor::{MonitorConfig, SystemMonitor};
use pabst_core::pacer::Pacer;
use pabst_core::qos::{QosId, ShareTable};
use pabst_dram::{ArbiterMode, DramConfig, MemController, MemReq};
use pabst_soc::config::{RegulationMode, SystemConfig};
use pabst_soc::system::SystemBuilder;

fn bench_pacer() {
    let mut p = Pacer::new(10);
    let mut now = 0u64;
    bench("pacer/try_issue", 1_000_000, || {
        now += 1;
        std::hint::black_box(p.try_issue(now));
    });
}

fn bench_arbiter() {
    let shares = ShareTable::from_weights(&[3, 1]).unwrap();
    let mut vc = VirtualClocks::new(&shares, 128);
    let mut i = 0u8;
    bench("arbiter/stamp_and_pick", 1_000_000, || {
        i = (i + 1) % 2;
        let id = QosId::new(i);
        let d = vc.stamp(id);
        vc.on_picked(id, d);
    });
}

fn bench_governor() {
    let mut mon = SystemMonitor::new(MonitorConfig::default());
    let mut i = 0u32;
    bench("governor/on_epoch", 1_000_000, || {
        i = i.wrapping_add(1);
        std::hint::black_box(mon.on_epoch(Some(i.is_multiple_of(3))));
    });
}

fn bench_cache() {
    let mut cache = SetAssocCache::new(CacheConfig::with_capacity(256 * 1024, 8));
    let q = QosId::new(0);
    let mut line = 0u64;
    bench("cache/l2_probe_fill", 1_000_000, || {
        line = line.wrapping_add(97);
        let l = LineAddr::new(line & 0xffff);
        if !cache.probe(l) {
            std::hint::black_box(cache.fill(l, q, false));
        }
    });

    let mut m: MshrTable<u64> = MshrTable::new(16);
    let mut mline = 0u64;
    bench("cache/mshr_alloc_complete", 1_000_000, || {
        mline = mline.wrapping_add(1);
        let l = LineAddr::new(mline % 8);
        m.alloc(l, mline);
        std::hint::black_box(m.complete(l));
    });
}

fn bench_dram() {
    let shares = ShareTable::from_weights(&[1]).unwrap();
    let mut mc = MemController::new(DramConfig::default(), ArbiterMode::Edf, &shares, 128);
    let mut now = 0u64;
    let mut line = 0u64;
    let mut done = Vec::new();
    bench("dram/mc_step_saturated", 100_000, || {
        while mc.can_accept() {
            if mc
                .push(MemReq {
                    line: LineAddr::new(line),
                    class: QosId::new(0),
                    is_write: false,
                    token: 0,
                })
                .is_err()
            {
                break;
            }
            line += 1;
        }
        now += 1;
        done.clear();
        mc.step_into(now, &mut done);
        std::hint::black_box(done.len());
    });
}

fn bench_system() {
    use pabst_cpu::{Op, Workload};
    struct Mini {
        n: u64,
    }
    impl Workload for Mini {
        fn next_op(&mut self) -> Op {
            self.n += 1;
            if self.n.is_multiple_of(2) {
                Op::Compute(2)
            } else {
                Op::Load {
                    addr: pabst_cache::Addr::new((self.n * 128) & 0xfff_ffff),
                    id: pabst_cpu::LoadId(self.n),
                    dep: None,
                }
            }
        }
        fn name(&self) -> &str {
            "mini-stream"
        }
    }

    bench_batched(
        "system/one_epoch_small_system",
        || {
            SystemBuilder::new(SystemConfig::small_test(), RegulationMode::Pabst)
                .class(3, vec![Box::new(Mini { n: 0 }), Box::new(Mini { n: 1 << 32 })])
                .class(1, vec![Box::new(Mini { n: 2 << 32 }), Box::new(Mini { n: 3 << 32 })])
                .build()
                .unwrap()
        },
        |mut sys| {
            sys.run_epochs(1);
            std::hint::black_box(sys.now());
        },
    );
}

fn main() {
    bench_pacer();
    bench_arbiter();
    bench_governor();
    bench_cache();
    bench_dram();
    bench_system();
}
